"""Island-model genetic search (extension of Sec 4.3's diversity argument).

The paper credits the GA's population diversity with escaping the local
minima that trap the greedy baseline. The island model pushes that lever
further: several sub-populations evolve independently (different seeds,
so different trajectories through the partition space) and periodically
exchange their best genomes. Migration spreads building blocks that one
island found to the others without collapsing global diversity — a
standard remedy when a single population converges prematurely on large
irregular graphs.

Implemented as a thin conductor over :class:`~repro.ga.engine.
GeneticEngine`: each epoch runs every island for ``epoch_generations``,
then the per-island elites migrate in a ring. Budgets are comparable to a
single-population run with the same total sample count, so results are
directly comparable in the experiment harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..errors import SearchError
from ..parallel.backend import EvaluationBackend, resolve_backend
from .engine import GAConfig, GAResult, GeneticEngine
from .genome import Genome
from .problem import OptimizationProblem


@dataclass
class IslandConfig:
    """Hyper-parameters of the island-model search.

    ``base`` configures each island's inner GA; its ``generations`` field
    is ignored in favor of ``epochs * epoch_generations``.
    """

    base: GAConfig = field(default_factory=GAConfig)
    num_islands: int = 4
    epochs: int = 5
    epoch_generations: int = 5
    migrants: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_islands < 2:
            raise SearchError("island model needs at least two islands")
        if self.epochs < 1 or self.epoch_generations < 1:
            raise SearchError("epochs and epoch generations must be positive")
        if self.migrants < 1:
            raise SearchError("need at least one migrant per epoch")
        if self.migrants >= self.base.population_size:
            raise SearchError("migrants must be fewer than the population")


def _island_engines(
    problem: OptimizationProblem,
    config: IslandConfig,
    backend: EvaluationBackend,
) -> list[GeneticEngine]:
    engines = []
    for index in range(config.num_islands):
        island_cfg = replace(
            config.base,
            generations=config.epoch_generations,
            seed=config.seed * 1009 + index,
        )
        engines.append(GeneticEngine(problem, island_cfg, backend=backend))
    return engines


def island_search(
    problem: OptimizationProblem,
    config: IslandConfig | None = None,
    seeds: Sequence[Genome] = (),
    backend: EvaluationBackend | None = None,
) -> GAResult:
    """Run the island-model GA and return the globally best genome.

    ``seeds`` warm-start island 0 (the flexible-initialization property
    carries over); migration then distributes anything useful they
    contain. The returned :class:`GAResult` aggregates evaluations and
    concatenates a global best-cost history across epochs.

    All islands share one evaluation ``backend`` (built from
    ``config.base.workers`` when not supplied), so a process pool stays
    warm across every epoch of every island instead of restarting per
    engine run.
    """
    config = config or IslandConfig()
    owns_backend = backend is None
    if backend is None:
        backend = resolve_backend(
            config.base.workers, config.base.eval_chunk_size
        )
    try:
        return _island_search(problem, config, seeds, backend)
    finally:
        if owns_backend:
            backend.close()


def _island_search(
    problem: OptimizationProblem,
    config: IslandConfig,
    seeds: Sequence[Genome],
    backend: EvaluationBackend,
) -> GAResult:
    engines = _island_engines(problem, config, backend)
    rng = random.Random(config.seed)

    populations: list[list[Genome]] = []
    for index, engine in enumerate(engines):
        island_seeds = list(seeds) if index == 0 else []
        result = engine.run(seeds=island_seeds)
        populations.append(_elites(problem, result, config.base.population_size))

    best: Genome | None = None
    best_cost = float("inf")
    history: list[tuple[int, float]] = []
    total_evaluations = sum(e._evaluations for e in engines)

    def note_best() -> None:
        nonlocal best, best_cost
        for engine in engines:
            if engine._best is not None and engine._best_cost < best_cost:
                best = engine._best
                best_cost = engine._best_cost
                history.append((sum(e._evaluations for e in engines), best_cost))

    note_best()
    for _epoch in range(1, config.epochs):
        _migrate_ring(problem, populations, config.migrants, rng)
        for index, engine in enumerate(engines):
            result = engine.run(seeds=populations[index])
            populations[index] = _elites(
                problem, result, config.base.population_size
            )
        total_evaluations = sum(e._evaluations for e in engines)
        note_best()

    if best is None:
        raise SearchError("island search produced no evaluated genome")
    return GAResult(
        best_genome=best,
        best_cost=best_cost,
        num_evaluations=total_evaluations,
        history=history,
    )


def _elites(
    problem: OptimizationProblem, result: GAResult, count: int
) -> list[Genome]:
    """Seed stock for the next epoch: the island's best genome, repeated
    sampling handled by the engine's own initialization."""
    return [result.best_genome] * min(count, 4)


def _migrate_ring(
    problem: OptimizationProblem,
    populations: list[list[Genome]],
    migrants: int,
    rng: random.Random,
) -> None:
    """Send each island's best genomes to its ring neighbor (in place)."""
    bests: list[list[Genome]] = []
    for population in populations:
        ranked = sorted(population, key=problem.cost)
        bests.append(ranked[:migrants])
    count = len(populations)
    for index in range(count):
        incoming = bests[(index - 1) % count]
        populations[index] = list(populations[index]) + list(incoming)
        rng.shuffle(populations[index])
