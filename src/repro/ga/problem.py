"""The optimization problem shared by every search method.

Bundles the evaluation environment with the objective (Formula 1 for
partition-only search, Formula 2 for hardware-mapping co-exploration) and
the in-situ capacity repair of Sec 4.4.4, so the GA, SA, and the two-step
baselines all optimize exactly the same cost surface.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..config import MemoryConfig
from ..cost.evaluator import Evaluator, PartitionCost
from ..cost.objective import Metric, co_opt_objective, partition_objective
from ..errors import ConfigError
from ..graphs.graph import ComputationGraph
from ..parallel.backend import EvaluationBackend, cached_map
from ..parallel.tasks import CostTask
from ..partition.random_init import random_partition
from ..partition.validity import split_infeasible
from ..search_space import CapacitySpace
from .genome import Genome


@dataclass
class OptimizationProblem:
    """Cost surface for partition search or partition+memory co-search.

    With ``alpha`` set the objective is Formula 2 (co-exploration); with
    ``alpha=None`` it is Formula 1 at the fixed ``memory``. ``space`` being
    ``None`` pins every genome to ``fixed_memory``.
    """

    evaluator: Evaluator
    metric: Metric = Metric.EMA
    alpha: float | None = None
    space: CapacitySpace | None = None
    fixed_memory: MemoryConfig | None = None
    #: Incremental (delta) evaluation: fitness comes from
    #: :meth:`~repro.cost.evaluator.Evaluator.summarize` (per-subgraph
    #: scalar aggregates, cached — a child genome re-prices only the
    #: subgraphs that differ from its parents) and repair probes use the
    #: pricing-free :meth:`~repro.cost.evaluator.Evaluator.feasible`.
    #: Disabling falls back to building a full PartitionCost per genome;
    #: objective values are bit-identical either way.
    incremental: bool = True
    #: Population batch pricing: before a batch of genomes is scored,
    #: :meth:`prime` hands all their unseen subgraphs to
    #: :meth:`~repro.cost.evaluator.Evaluator.prime_summaries` — deduped,
    #: shape-class batched tensor pricing with closed-form direct solves
    #: (see :mod:`repro.cost.batch`) — so the per-genome scoring runs
    #: over cached scalars. Bit-identical to serial scoring; only takes
    #: effect together with :attr:`incremental`.
    batch_pricing: bool = True
    _fitness_cache: dict = field(default_factory=dict, repr=False)
    _cost_task: CostTask | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.space is None and self.fixed_memory is None:
            raise ConfigError("need either a capacity space or a fixed memory")

    @property
    def graph(self) -> ComputationGraph:
        return self.evaluator.graph

    # ------------------------------------------------------------------
    def memory_of(self, genome: Genome) -> MemoryConfig:
        """The memory configuration a genome is priced under."""
        if self.space is None:
            assert self.fixed_memory is not None
            return self.fixed_memory
        return genome.memory

    def random_genome(self, rng: random.Random, p_new: float = 0.5) -> Genome:
        """Sample a random valid genome (partition + capacity)."""
        partition = random_partition(self.graph, rng, p_new=p_new)
        if self.space is not None:
            memory = self.space.sample(rng)
        else:
            assert self.fixed_memory is not None
            memory = self.fixed_memory
        return self.repair(Genome(partition=partition, memory=memory))

    # ------------------------------------------------------------------
    def repair(self, genome: Genome) -> Genome:
        """In-situ tuning: split subgraphs that exceed the buffer capacity."""
        memory = self.memory_of(genome)
        if self.incremental:
            def fits(members: frozenset[str]) -> bool:
                return self.evaluator.feasible(members, memory)
        else:
            def fits(members: frozenset[str]) -> bool:
                return self.evaluator.subgraph_cost(members, memory).feasible

        repaired = split_infeasible(genome.partition, fits)
        if repaired is genome.partition:
            return genome
        return genome.with_partition(repaired)

    def prime(self, genomes: Sequence[Genome]) -> None:
        """Batch-price all unseen subgraphs of a genome batch at once.

        A no-op unless both :attr:`incremental` and :attr:`batch_pricing`
        are on. Priming only fills the evaluator's summary cache, so the
        subsequent per-genome :meth:`cost` calls return bit-identical
        values — just without per-genome pricing work.
        """
        if not (self.incremental and self.batch_pricing) or not genomes:
            return
        self.evaluator.prime_summaries(
            [g.partition.subgraph_sets for g in genomes],
            [self.memory_of(g) for g in genomes],
        )

    def evaluate(self, genome: Genome) -> tuple[float, PartitionCost]:
        """Objective value and the underlying partition cost."""
        memory = self.memory_of(genome)
        cost = self.evaluator.evaluate(genome.partition.subgraph_sets, memory)
        if self.alpha is None:
            return partition_objective(cost, self.metric), cost
        return co_opt_objective(cost, memory, self.alpha, self.metric), cost

    def cost(self, genome: Genome) -> float:
        """Objective value only, memoized per genome key.

        With :attr:`incremental` (the default) the value is derived from
        :meth:`Evaluator.summarize` — running sums over cached
        per-subgraph scalars — instead of a full :class:`PartitionCost`;
        the two are bit-identical.
        """
        key = genome.key()
        hit = self._fitness_cache.get(key)
        if hit is not None:
            return hit
        if self.incremental:
            memory = self.memory_of(genome)
            summary = self.evaluator.summarize(
                genome.partition.subgraph_sets, memory
            )
            if self.alpha is None:
                value = partition_objective(summary, self.metric)
            else:
                value = co_opt_objective(
                    summary, memory, self.alpha, self.metric
                )
        else:
            value, _ = self.evaluate(genome)
        self._fitness_cache[key] = value
        return value

    # ------------------------------------------------------------------
    def cost_task(self) -> CostTask:
        """The stable, picklable task a backend ships to its workers.

        One task object per problem keeps a :class:`~repro.parallel.
        backend.ProcessPoolBackend`'s pool warm across generations (the
        pool is keyed to task identity).
        """
        if self._cost_task is None:
            self._cost_task = CostTask(self)
        return self._cost_task

    def cost_batch(
        self,
        genomes: Sequence[Genome],
        backend: EvaluationBackend | None = None,
    ) -> list[float]:
        """Objective values for a batch, preserving order and memoization.

        Genomes whose fitness is already memoized are answered from the
        cache; the remaining *unique* genomes fan out through ``backend``
        (deduplicated first, so a batch with repeats costs one evaluation
        per distinct genome — exactly like serial evaluation in order).
        Evaluation is pure per genome, so the returned costs are
        bit-identical to serial evaluation regardless of the backend.
        """
        if backend is None:
            return [self.cost(g) for g in genomes]

        def store(key: tuple, genome: Genome, value: float) -> float:
            self._fitness_cache[key] = value
            return value

        return cached_map(
            self.cost_task(),
            genomes,
            backend,
            key=Genome.key,
            lookup=self._fitness_cache.get,
            store=store,
        )
