"""The four customized mutation operations (Sec 4.4.3, Fig 9c-e).

* ``modify-node`` — move one randomly chosen layer into a neighboring
  subgraph or a fresh singleton,
* ``split-subgraph`` — cut one subgraph in two along its topological
  order,
* ``merge-subgraph`` — fuse two adjacent subgraphs,
* ``mutation-DSE`` — Gaussian-resample the memory configuration on the
  candidate grid.

Every operator emits its raw grouping through
:func:`~repro.partition.validity.normalize_groups`, which restores
precedence/connectivity, so genomes stay valid by construction.
"""

from __future__ import annotations

import random

from ..partition.validity import normalize_groups
from ..search_space import CapacitySpace
from .genome import Genome


def modify_node(genome: Genome, rng: random.Random) -> Genome:
    """Reassign one random layer to a neighbor's subgraph or a new one."""
    partition = genome.partition
    graph = partition.graph
    name = rng.choice(graph.compute_names)
    current = partition.index_of(name)
    neighbor_indices = sorted(
        {
            partition.index_of(n)
            for n in (*graph.predecessors(name), *graph.successors(name))
            if not graph.layer(n).is_input
        }
        - {current}
    )
    groups = partition.groups()
    groups[current].discard(name)
    if neighbor_indices and rng.random() < 0.7:
        groups[rng.choice(neighbor_indices)].add(name)
    else:
        groups.append({name})
    return genome.with_partition(normalize_groups(graph, groups))


def split_subgraph(genome: Genome, rng: random.Random) -> Genome:
    """Split one randomly selected multi-layer subgraph in two."""
    partition = genome.partition
    graph = partition.graph
    splittable = [i for i, s in enumerate(partition.subgraph_sets) if len(s) >= 2]
    if not splittable:
        return genome
    target = rng.choice(splittable)
    topo_index = graph.topo_index()
    ordered = sorted(partition.members(target), key=lambda n: topo_index[n])
    cut = rng.randint(1, len(ordered) - 1)
    groups = partition.groups()
    groups[target] = set(ordered[:cut])
    groups.append(set(ordered[cut:]))
    return genome.with_partition(normalize_groups(graph, groups))


def merge_subgraph(genome: Genome, rng: random.Random) -> Genome:
    """Merge two randomly selected adjacent subgraphs into one."""
    partition = genome.partition
    graph = partition.graph
    assignment = partition.assignment
    pairs = sorted(
        {
            tuple(sorted((assignment[u], assignment[v])))
            for u, v in graph.edges
            if u in assignment and v in assignment and assignment[u] != assignment[v]
        }
    )
    if not pairs:
        return genome
    a, b = rng.choice(pairs)
    groups = partition.groups()
    groups[a] |= groups[b]
    groups.pop(b)
    return genome.with_partition(normalize_groups(graph, groups))


def mutate_dse(
    genome: Genome, rng: random.Random, space: CapacitySpace, sigma_steps: float = 3.0
) -> Genome:
    """mutation-DSE: resample the memory configuration near the current one."""
    return genome.with_memory(space.perturb(genome.memory, rng, sigma_steps))


#: Partition-space mutation operators, keyed by the paper's names.
MUTATION_OPS = {
    "modify-node": modify_node,
    "split-subgraph": split_subgraph,
    "merge-subgraph": merge_subgraph,
}
