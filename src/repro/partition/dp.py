"""Depth-ordered dynamic-programming baseline (Irregular-NN, Sec 4.2.3).

Layers are arranged by depth (ties broken by topological position) and
the DP may only group layers that are *contiguous* in that order — the
constrained search space the paper criticizes. Segments that come out
disconnected are rejected, so singleton fallbacks keep the DP total.
"""

from __future__ import annotations

from typing import Callable

from ..graphs.graph import ComputationGraph
from .partition import Partition
from .subgraph import weakly_connected_components
from .validity import normalize_groups

CostFn = Callable[[frozenset[str]], float]


def _depth_order(graph: ComputationGraph) -> list[str]:
    depths = graph.depth()
    topo_index = graph.topo_index()
    return sorted(graph.compute_names, key=lambda n: (depths[n], topo_index[n]))


def dp_partition(
    graph: ComputationGraph,
    cost_fn: CostFn,
    max_segment: int = 24,
) -> Partition:
    """Optimal partition among depth-contiguous segmentations.

    ``max_segment`` caps segment length (the DP is O(N * max_segment)
    evaluations). Depth-contiguous segmentations always satisfy precedence
    because an edge strictly increases depth.
    """
    order = _depth_order(graph)
    count = len(order)
    best = [float("inf")] * (count + 1)
    best[0] = 0.0
    choice = [0] * (count + 1)
    for end in range(1, count + 1):
        for start in range(max(0, end - max_segment), end):
            segment = frozenset(order[start:end])
            if len(segment) > 1:
                if len(weakly_connected_components(graph, segment)) != 1:
                    continue
            cost = cost_fn(segment)
            total = best[start] + cost
            if total < best[end]:
                best[end] = total
                choice[end] = start
    groups: list[frozenset[str]] = []
    end = count
    while end > 0:
        start = choice[end]
        groups.append(frozenset(order[start:end]))
        end = start
    groups.reverse()
    return normalize_groups(graph, groups)
