"""Subgraph-level graph utilities shared by partition code."""

from __future__ import annotations

from typing import Iterable, Mapping

from ..graphs.graph import ComputationGraph


def weakly_connected_components(
    graph: ComputationGraph, members: Iterable[str]
) -> list[frozenset[str]]:
    """Weakly connected components of the member-induced subgraph.

    Connectivity counts only direct edges between members — "any subgraph
    should be connected in G, otherwise meaningless" (Sec 4.1.1).
    Components are returned in topological order of their earliest member.
    Union-find keeps this near-linear; it runs on every operator output.
    """
    members = set(members)
    # Union in sorted order so the union-find's internal roots (and the
    # resulting bucket layout) are identical across processes — set
    # iteration order is hash-seed dependent.
    ordered = sorted(members)
    parent = {n: n for n in ordered}

    def find(node: str) -> str:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for node in ordered:
        for other in graph.predecessors(node):
            if other in members:
                ra, rb = find(node), find(other)
                if ra != rb:
                    parent[ra] = rb
    buckets: dict[str, set[str]] = {}
    for node in ordered:
        buckets.setdefault(find(node), set()).add(node)
    topo_index = graph.topo_index()
    components = [frozenset(c) for c in buckets.values()]
    components.sort(key=lambda c: min(topo_index[n] for n in c))
    return components


def quotient_edges(
    graph: ComputationGraph, assignment: Mapping[str, int]
) -> set[tuple[int, int]]:
    """Directed edges between distinct subgraphs of an assignment."""
    edges: set[tuple[int, int]] = set()
    for producer, consumer in graph.edges:
        if producer in assignment and consumer in assignment:
            a, b = assignment[producer], assignment[consumer]
            if a != b:
                edges.add((a, b))
    return edges


def quotient_reachable(
    edges: set[tuple[int, int]], start: int, target: int, skip_direct: bool
) -> bool:
    """Whether ``target`` is reachable from ``start`` in the quotient.

    With ``skip_direct`` the direct edge ``(start, target)`` is ignored —
    used to decide whether merging two subgraphs would create a cycle.
    """
    adjacency: dict[int, list[int]] = {}
    for a, b in sorted(edges):
        if skip_direct and (a, b) == (start, target):
            continue
        adjacency.setdefault(a, []).append(b)
    stack = [start]
    seen = {start}
    while stack:
        node = stack.pop()
        for nxt in adjacency.get(node, ()):
            if nxt == target:
                return True
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return False
