"""The partition scheme ``P: V -> N`` (Sec 4.1.1).

A :class:`Partition` assigns every *compute* layer to a subgraph index;
model inputs belong to no subgraph (they are DRAM-resident data, the
negative-numbered nodes of the paper's figures). Instances are immutable
and hashable so search code can dedupe and memoize them. Construction
validates precedence, connectivity, and index density — operators that
may produce raw groupings should go through
:func:`repro.partition.validity.normalize_groups` instead.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import PartitionError
from ..graphs.graph import ComputationGraph


class Partition:
    """Immutable, validated assignment of compute layers to subgraphs."""

    __slots__ = ("graph", "_assignment", "_sets", "_key", "__weakref__")

    def __init__(self, graph: ComputationGraph, assignment: Mapping[str, int]):
        from .validity import check_partition  # deferred: circular import

        check_partition(graph, assignment)
        self.graph = graph
        self._assignment = dict(assignment)
        count = max(self._assignment.values()) + 1
        sets: list[set[str]] = [set() for _ in range(count)]
        for name, index in self._assignment.items():
            sets[index].add(name)
        self._sets = tuple(frozenset(s) for s in sets)
        self._key = tuple(
            self._assignment[name] for name in graph.compute_names
        )

    # ------------------------------------------------------------------
    @staticmethod
    def from_groups(
        graph: ComputationGraph, groups: Sequence[Iterable[str]]
    ) -> "Partition":
        """Build from subgraph member sets already in schedule order."""
        assignment: dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                if name in assignment:
                    raise PartitionError(f"layer {name!r} appears in two subgraphs")
                assignment[name] = index
        return Partition(graph, assignment)

    @staticmethod
    def singletons(graph: ComputationGraph) -> "Partition":
        """The layer-level partition: every compute layer on its own."""
        names = graph.compute_names
        return Partition(graph, {name: i for i, name in enumerate(names)})

    @staticmethod
    def whole_graph(graph: ComputationGraph) -> "Partition":
        """All compute layers fused into a single subgraph."""
        return Partition(graph, {name: 0 for name in graph.compute_names})

    # ------------------------------------------------------------------
    @property
    def num_subgraphs(self) -> int:
        return len(self._sets)

    @property
    def subgraph_sets(self) -> tuple[frozenset[str], ...]:
        """Member sets, indexed by subgraph number (= schedule order)."""
        return self._sets

    def index_of(self, name: str) -> int:
        """Subgraph index of a compute layer."""
        try:
            return self._assignment[name]
        except KeyError:
            raise PartitionError(f"layer {name!r} is not assigned") from None

    def members(self, index: int) -> frozenset[str]:
        """Member set of subgraph ``index``."""
        if not 0 <= index < len(self._sets):
            raise PartitionError(f"no subgraph {index}")
        return self._sets[index]

    @property
    def assignment(self) -> dict[str, int]:
        """A copy of the layer -> subgraph mapping."""
        return dict(self._assignment)

    def groups(self) -> list[set[str]]:
        """Mutable copies of the member sets (for operators)."""
        return [set(s) for s in self._sets]

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.graph is other.graph and self._key == other._key

    def __hash__(self) -> int:
        return hash((id(self.graph), self._key))

    def __repr__(self) -> str:
        sizes = [len(s) for s in self._sets]
        return f"Partition({self.graph.name!r}, subgraphs={sizes})"
