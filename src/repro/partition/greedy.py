"""Halide-style greedy grouping baseline (Sec 4.2.2).

Start from the layer-level partition and iteratively merge the pair of
adjacent subgraphs with the greatest cost benefit until no merge helps.
A merge is only considered when the two subgraphs are connected by an
edge and contracting them keeps the quotient acyclic (no other directed
path between them), so every intermediate state is a valid partition.
"""

from __future__ import annotations

from typing import Callable

from ..graphs.graph import ComputationGraph
from .partition import Partition
from .subgraph import quotient_reachable
from .validity import normalize_groups

CostFn = Callable[[frozenset[str]], float]


def _mergeable_pairs(
    graph: ComputationGraph, groups: list[frozenset[str]]
) -> list[tuple[int, int]]:
    """Index pairs whose merge keeps the partition valid."""
    owner: dict[str, int] = {}
    for gi, group in enumerate(groups):
        for name in group:
            owner[name] = gi
    edges: set[tuple[int, int]] = set()
    for producer, consumer in graph.edges:
        a, b = owner.get(producer), owner.get(consumer)
        if a is not None and b is not None and a != b:
            edges.add((a, b))
    pairs = []
    for a, b in sorted(edges):
        if not quotient_reachable(edges, a, b, skip_direct=True):
            pairs.append((a, b))
    return pairs


def greedy_partition(
    graph: ComputationGraph,
    cost_fn: CostFn,
    max_merges: int | None = None,
) -> Partition:
    """Run the greedy merger; ``cost_fn`` prices one subgraph member set.

    ``cost_fn`` should return ``inf`` for subgraphs that do not fit the
    fixed hardware, which makes such merges unprofitable automatically.
    """
    groups = [frozenset([name]) for name in graph.compute_names]
    costs = [cost_fn(g) for g in groups]
    merges = 0
    while max_merges is None or merges < max_merges:
        best_gain = 0.0
        best_pair: tuple[int, int] | None = None
        best_cost = 0.0
        for a, b in _mergeable_pairs(graph, groups):
            merged = groups[a] | groups[b]
            merged_cost = cost_fn(merged)
            gain = costs[a] + costs[b] - merged_cost
            if gain > best_gain:
                best_gain = gain
                best_pair = (a, b)
                best_cost = merged_cost
        if best_pair is None:
            break
        a, b = best_pair
        merged = groups[a] | groups[b]
        groups = [g for i, g in enumerate(groups) if i not in (a, b)]
        costs = [c for i, c in enumerate(costs) if i not in (a, b)]
        groups.append(merged)
        costs.append(best_cost)
        merges += 1
    return normalize_groups(graph, groups)
