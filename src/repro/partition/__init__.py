"""Graph partitions: representation, validity, baselines (Sec 4.1-4.2)."""

from .partition import Partition
from .subgraph import quotient_edges, weakly_connected_components
from .validity import check_partition, normalize_groups, split_infeasible
from .random_init import random_partition
from .greedy import greedy_partition
from .dp import dp_partition
from .enumeration import enumerate_partition

__all__ = [
    "Partition",
    "quotient_edges",
    "weakly_connected_components",
    "check_partition",
    "normalize_groups",
    "split_infeasible",
    "random_partition",
    "greedy_partition",
    "dp_partition",
    "enumerate_partition",
]
