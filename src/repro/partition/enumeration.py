"""Exact enumeration via state-compression DP (Sec 4.2.1).

Fused-CNN enumerates all partitions; Jangda et al. compress the
enumeration into a dynamic program. Following the paper's improvement we
record only the *scheduled ideal* (the downward-closed set of already
executed layers) as the DP state: from each ideal, every connected,
dependency-closed candidate subgraph of un-scheduled layers is a
transition. The search is exact but exponential in the worst case —
``max_states`` bounds the explored state count and raises
:class:`~repro.errors.SearchError` when exceeded, reproducing the paper's
"cannot complete within a reasonable time" behaviour on Transformer, GPT,
and the RandWire models.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SearchError
from ..graphs.graph import ComputationGraph
from .partition import Partition
from .subgraph import weakly_connected_components

CostFn = Callable[[frozenset[str]], float]


def _candidate_subgraphs(
    graph: ComputationGraph,
    ideal: frozenset[str],
    compute: frozenset[str],
    max_size: int,
    prune_fn: Callable[[frozenset[str]], bool] | None,
    max_candidates: int,
) -> list[frozenset[str]]:
    """All valid next-subgraphs from a scheduled ideal.

    A candidate is connected, at most ``max_size`` nodes, and closed under
    dependencies relative to the ideal (every predecessor of a member is
    scheduled or a member). ``prune_fn`` returning ``True`` stops growth
    through a candidate — used to cut off sets that already exceed the
    buffer capacity, which bounds the enumeration the way the hardware
    does. Exceeding ``max_candidates`` raises :class:`SearchError`.
    """

    def compute_preds(name: str) -> list[str]:
        return [p for p in graph.predecessors(name) if p in compute]

    # Growth explores dependency-closed sets (connectivity is checked only
    # on the final sets): a valid subgraph may require pulling in a
    # non-adjacent dependency before the node that connects it, so
    # intermediate states must be allowed to be disconnected.
    ready = [
        n
        for n in graph.compute_names
        if n not in ideal and all(p in ideal for p in compute_preds(n))
    ]
    explored: set[frozenset[str]] = set()
    queue: list[frozenset[str]] = []
    for seed in ready:
        start = frozenset([seed])
        if start not in explored:
            explored.add(start)
            queue.append(start)
    while queue:
        current = queue.pop()
        if len(current) >= max_size:
            continue
        if prune_fn is not None and prune_fn(current):
            continue
        # Nodes that become ready once `current` is scheduled: successors
        # of current members plus the originally-ready roots.
        frontier: set[str] = set(ready)
        for name in current:
            frontier.update(graph.successors(name))
        for name in sorted(frontier):
            if name in current or name in ideal or name not in compute:
                continue
            if not all(p in ideal or p in current for p in compute_preds(name)):
                continue
            grown = current | {name}
            if grown not in explored:
                explored.add(grown)
                if len(explored) > max_candidates:
                    raise SearchError(
                        f"enumeration frontier exceeded {max_candidates} "
                        f"candidate subgraphs on {graph.name!r}"
                    )
                queue.append(grown)
    connected = [
        s
        # repro-lint: allow[RL105] -- the filter is per-element and the
        # result is re-sorted by a total key (size, members) on return
        for s in explored
        if len(s) == 1 or len(weakly_connected_components(graph, s)) == 1
    ]
    return sorted(connected, key=lambda s: (len(s), sorted(s)))


def enumerate_partition(
    graph: ComputationGraph,
    cost_fn: CostFn,
    max_subgraph_size: int = 64,
    max_states: int = 100_000,
    prune_fn: Callable[[frozenset[str]], bool] | None = None,
    max_candidates_per_state: int = 50_000,
) -> Partition:
    """Exact optimal partition by ideal-state dynamic programming.

    ``prune_fn`` should return ``True`` for member sets that can never be
    scheduled (e.g. minimum footprint already beyond the buffer), which is
    what keeps the candidate enumeration finite on real hardware limits.
    Raises :class:`SearchError` when the state or candidate budget is
    exhausted, which is the expected outcome for large irregular networks.
    """
    compute = frozenset(graph.compute_names)
    full = compute
    start: frozenset[str] = frozenset()
    dp_cost: dict[frozenset[str], float] = {start: 0.0}
    dp_parent: dict[frozenset[str], tuple[frozenset[str], frozenset[str]]] = {}
    by_size: dict[int, list[frozenset[str]]] = {0: [start]}
    explored = 0

    for size in range(0, len(compute)):
        for ideal in by_size.get(size, []):
            base = dp_cost[ideal]
            if full in dp_cost and base >= dp_cost[full]:
                continue
            for subgraph in _candidate_subgraphs(
                graph,
                ideal,
                compute,
                max_subgraph_size,
                prune_fn,
                max_candidates_per_state,
            ):
                cost = cost_fn(subgraph)
                if cost == float("inf"):
                    continue
                new_ideal = ideal | subgraph
                total = base + cost
                known = dp_cost.get(new_ideal)
                if known is not None and known <= total:
                    continue
                if known is None:
                    explored += 1
                    if explored > max_states:
                        raise SearchError(
                            f"enumeration exceeded {max_states} states on "
                            f"{graph.name!r}; the model is too large for the "
                            "exact method"
                        )
                    by_size.setdefault(len(new_ideal), []).append(new_ideal)
                dp_cost[new_ideal] = total
                dp_parent[new_ideal] = (ideal, subgraph)

    if full not in dp_cost:
        raise SearchError(
            f"no feasible partition found for {graph.name!r}; even singleton "
            "subgraphs exceed the buffer capacity"
        )
    groups: list[frozenset[str]] = []
    cursor = full
    while cursor != start:
        parent, subgraph = dp_parent[cursor]
        groups.append(subgraph)
        cursor = parent
    groups.reverse()
    return Partition.from_groups(graph, groups)
