"""Validity checking, normalization, and repair of partitions.

Three rules make a partition valid (Sec 4.1.1):

1. every compute layer is assigned to exactly one subgraph, with dense
   indices ``0 .. k-1`` (the schedule order),
2. precedence — for every edge ``(u, v)``, ``P(u) <= P(v)``,
3. every subgraph is weakly connected through direct member-to-member
   edges.

:func:`normalize_groups` turns *any* raw grouping into a valid partition:
it splits disconnected groups into components, merges groups that form
cycles in the quotient graph (an SCC contraction — the union of a quotient
cycle is always connected, because each group is connected and the cycle's
cross edges link them), and renumbers by a deterministic topological sort
of the condensation. Every GA operator funnels its output through it,
which is what lets crossover and the mutations stay simple while still
"guaranteeing the validity of genomes" (Sec 4.4.3).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from ..errors import PartitionError
from ..graphs.graph import ComputationGraph
from .partition import Partition
from .subgraph import weakly_connected_components


def check_partition(graph: ComputationGraph, assignment: Mapping[str, int]) -> None:
    """Raise :class:`PartitionError` unless ``assignment`` is valid."""
    compute = set(graph.compute_names)
    assigned = set(assignment)
    if assigned != compute:
        missing = sorted(compute - assigned)
        extra = sorted(assigned - compute)
        raise PartitionError(
            f"bad assignment domain: missing={missing[:5]} extra={extra[:5]}"
        )
    indices = set(assignment.values())
    if min(indices) != 0 or indices != set(range(len(indices))):
        raise PartitionError(f"subgraph indices are not dense: {sorted(indices)[:10]}")
    for producer, consumer in graph.edges:
        if producer in assignment and consumer in assignment:
            if assignment[producer] > assignment[consumer]:
                raise PartitionError(
                    f"precedence violated on edge ({producer!r}, {consumer!r}): "
                    f"{assignment[producer]} > {assignment[consumer]}"
                )
    groups: dict[int, set[str]] = {}
    for name, index in assignment.items():
        groups.setdefault(index, set()).add(name)
    for index, members in groups.items():
        components = weakly_connected_components(graph, members)
        if len(components) != 1:
            raise PartitionError(
                f"subgraph {index} is disconnected: "
                f"{[sorted(c)[:3] for c in components]}"
            )


def _condensation_order(
    graph: ComputationGraph, groups: list[frozenset[str]]
) -> list[int]:
    """Topological order of group indices after SCC contraction is a DAG."""
    topo_index = graph.topo_index()
    owner: dict[str, int] = {}
    for gi, group in enumerate(groups):
        for name in group:
            owner[name] = gi
    succ: dict[int, set[int]] = {gi: set() for gi in range(len(groups))}
    indegree = {gi: 0 for gi in range(len(groups))}
    for producer, consumer in graph.edges:
        a, b = owner.get(producer), owner.get(consumer)
        if a is None or b is None or a == b:
            continue
        if b not in succ[a]:
            succ[a].add(b)
            indegree[b] += 1
    rank = {gi: min(topo_index[n] for n in group) for gi, group in enumerate(groups)}
    ready = sorted(
        (gi for gi in indegree if indegree[gi] == 0), key=lambda gi: rank[gi]
    )
    order: list[int] = []
    while ready:
        ready.sort(key=lambda gi: rank[gi])
        node = ready.pop(0)
        order.append(node)
        for nxt in succ[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    if len(order) != len(groups):
        raise PartitionError("quotient graph still cyclic after contraction")
    return order


def _contract_cycles(
    graph: ComputationGraph, groups: list[frozenset[str]]
) -> list[frozenset[str]]:
    """Merge groups lying on quotient cycles (Tarjan SCC contraction)."""
    owner: dict[str, int] = {}
    for gi, group in enumerate(groups):
        for name in group:
            owner[name] = gi
    succ: dict[int, set[int]] = {gi: set() for gi in range(len(groups))}
    for producer, consumer in graph.edges:
        a, b = owner.get(producer), owner.get(consumer)
        if a is not None and b is not None and a != b:
            succ[a].add(b)

    # Iterative Tarjan over the quotient graph.
    index_counter = 0
    stack: list[int] = []
    on_stack: set[int] = set()
    indices: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    sccs: list[list[int]] = []

    for root in range(len(groups)):
        if root in indices:
            continue
        work = [(root, iter(sorted(succ[root])))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in indices:
                    indices[nxt] = lowlink[nxt] = index_counter
                    index_counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(succ[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], indices[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)

    merged = [
        frozenset().union(*(groups[gi] for gi in scc)) for scc in sccs
    ]
    return merged


def normalize_groups(
    graph: ComputationGraph, groups: Sequence[Iterable[str]]
) -> Partition:
    """Repair any raw grouping of the compute layers into a valid partition."""
    compute = set(graph.compute_names)
    seen: set[str] = set()
    cleaned: list[frozenset[str]] = []
    for group in groups:
        members = {n for n in group if n in compute and n not in seen}
        seen.update(members)
        if not members:
            continue
        cleaned.extend(weakly_connected_components(graph, members))
    unassigned = compute - seen
    for name in sorted(unassigned):
        cleaned.append(frozenset([name]))

    contracted = _contract_cycles(graph, cleaned)
    # Contraction may merge previously split components into a connected
    # whole, but the union of a quotient cycle can also pick up pieces
    # that were only linked through nodes outside the cycle; re-split any
    # group that came out disconnected.
    final: list[frozenset[str]] = []
    for group in contracted:
        final.extend(weakly_connected_components(graph, group))
    final = _contract_cycles(graph, final)
    order = _condensation_order(graph, final)
    ordered = [final[gi] for gi in order]
    return Partition.from_groups(graph, ordered)


def split_infeasible(
    partition: Partition,
    is_feasible: Callable[[frozenset[str]], bool],
    max_rounds: int = 64,
) -> Partition:
    """In-situ repair: split oversized subgraphs until everything fits.

    This is the paper's in-situ ``split-subgraph`` tuning (Sec 4.4.4):
    when a subgraph exceeds the buffer capacity, bisect it along the
    topological order and retry. Singleton subgraphs that still do not fit
    are left in place (the partition is then genuinely infeasible for this
    hardware and will be priced at infinity).
    """
    graph = partition.graph
    topo_index = graph.topo_index()
    current = partition
    for _ in range(max_rounds):
        groups = [set(g) for g in current.subgraph_sets]
        oversized = [
            g for g in groups if len(g) > 1 and not is_feasible(frozenset(g))
        ]
        if not oversized:
            return current
        next_groups: list[set[str]] = []
        for group in groups:
            if group not in oversized:
                next_groups.append(group)
                continue
            ordered = sorted(group, key=lambda n: topo_index[n])
            half = len(ordered) // 2
            next_groups.append(set(ordered[:half]))
            next_groups.append(set(ordered[half:]))
        # Normalization may re-merge pieces whose split created quotient
        # cycles, so feasibility is re-checked on the normalized result
        # each round; singleton quotients are DAGs, which guarantees
        # termination.
        current = normalize_groups(graph, next_groups)
    return current
