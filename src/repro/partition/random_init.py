"""Random valid partition generation (Cocco's initialization, Sec 4.4.1).

Layers are decided in topological order; each layer either opens a new
subgraph or joins the subgraph of its highest-indexed predecessor — the
only join that preserves both precedence and connectivity at decision
time. ``p_new`` controls expected subgraph sizes.
"""

from __future__ import annotations

import random

from ..graphs.graph import ComputationGraph
from .partition import Partition
from .validity import normalize_groups


def random_partition(
    graph: ComputationGraph,
    rng: random.Random,
    p_new: float = 0.5,
) -> Partition:
    """Sample a uniformly-structured valid partition.

    ``p_new`` is the probability that a layer opens a fresh subgraph
    instead of joining its latest predecessor's subgraph.
    """
    assignment: dict[str, int] = {}
    next_index = 0
    for name in graph.compute_names:
        preds = [
            p for p in graph.predecessors(name) if p in assignment
        ]
        join_target = max((assignment[p] for p in preds), default=None)
        if join_target is None or rng.random() < p_new:
            assignment[name] = next_index
            next_index += 1
        else:
            assignment[name] = join_target
    groups: list[set[str]] = [set() for _ in range(next_index)]
    for name, index in assignment.items():
        groups[index].add(name)
    return normalize_groups(graph, groups)
