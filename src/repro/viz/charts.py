"""Pure-ASCII charts for terminal output.

Every function returns a string; nothing writes to stdout. Charts are
deterministic for a given input, so tests can assert on their content.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..errors import ConfigError

#: Marker characters assigned to series in declaration order.
MARKERS = "*+ox#@%&"


def _finite(values: Sequence[float]) -> list[float]:
    return [v for v in values if math.isfinite(v)]


def _span(lo: float, hi: float) -> tuple[float, float]:
    """Widen degenerate ranges so scaling never divides by zero."""
    if hi <= lo:
        pad = abs(lo) * 0.5 or 1.0
        return lo - pad, lo + pad
    return lo, hi


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.2e}"
    return f"{value:.4g}"


class _Grid:
    """A character canvas with data-space plotting."""

    def __init__(self, width: int, height: int,
                 x_range: tuple[float, float], y_range: tuple[float, float]):
        if width < 8 or height < 4:
            raise ConfigError(f"chart area too small: {width}x{height}")
        self.width = width
        self.height = height
        self.x_lo, self.x_hi = _span(*x_range)
        self.y_lo, self.y_hi = _span(*y_range)
        self.cells = [[" "] * width for _ in range(height)]

    def plot(self, x: float, y: float, marker: str) -> None:
        if not (math.isfinite(x) and math.isfinite(y)):
            return
        col = round((x - self.x_lo) / (self.x_hi - self.x_lo) * (self.width - 1))
        row = round((y - self.y_lo) / (self.y_hi - self.y_lo) * (self.height - 1))
        if 0 <= col < self.width and 0 <= row < self.height:
            # Row 0 is the bottom of the chart; the cell list is top-down.
            self.cells[self.height - 1 - row][col] = marker

    def render(self) -> list[str]:
        """Rows with a y-axis gutter and an x-axis footer."""
        label_lo = _format_tick(self.y_lo)
        label_hi = _format_tick(self.y_hi)
        gutter = max(len(label_lo), len(label_hi))
        lines = []
        for i, row in enumerate(self.cells):
            if i == 0:
                label = label_hi
            elif i == self.height - 1:
                label = label_lo
            else:
                label = ""
            lines.append(f"{label:>{gutter}} |{''.join(row)}")
        lines.append(f"{'':>{gutter}} +{'-' * self.width}")
        x_lo, x_hi = _format_tick(self.x_lo), _format_tick(self.x_hi)
        footer = x_lo + x_hi.rjust(self.width - len(x_lo))
        lines.append(f"{'':>{gutter}}  {footer}")
        return lines


def _points_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int,
    height: int,
    title: str | None,
    connect: bool,
) -> str:
    if not series:
        raise ConfigError("chart needs at least one series")
    xs = [p[0] for pts in series.values() for p in pts if math.isfinite(p[0])]
    ys = [p[1] for pts in series.values() for p in pts if math.isfinite(p[1])]
    if not xs or not ys:
        raise ConfigError("chart needs at least one finite point")
    grid = _Grid(width, height, (min(xs), max(xs)), (min(ys), max(ys)))
    legend = []
    for index, (label, points) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} {label}")
        ordered = sorted(p for p in points
                         if math.isfinite(p[0]) and math.isfinite(p[1]))
        if connect and len(ordered) > 1:
            # Sample one interpolated point per column between neighbors.
            for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
                steps = max(2, int((x1 - x0) / (grid.x_hi - grid.x_lo)
                                   * width) + 1)
                for step in range(steps + 1):
                    t = step / steps
                    grid.plot(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t, marker)
        else:
            for x, y in ordered:
                grid.plot(x, y, marker)
    lines = []
    if title:
        lines.append(title)
    lines.extend(grid.render())
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Connected line chart — one marker per series (Fig 12 style)."""
    return _points_chart(series, width, height, title, connect=True)


def scatter_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Scatter plot — points only, no interpolation (Fig 13 style)."""
    return _points_chart(series, width, height, title, connect=False)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal bar chart, one bar per label (Fig 3/11 style)."""
    if len(labels) != len(values):
        raise ConfigError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if not labels:
        raise ConfigError("bar chart needs at least one bar")
    finite = _finite(values)
    if not finite:
        raise ConfigError("bar chart needs at least one finite value")
    peak = max(max(finite), 0.0)
    gutter = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if not math.isfinite(value):
            bar, shown = "?", "inf"
        else:
            length = 0 if peak == 0 else max(0, round(value / peak * width))
            bar = "#" * length
            shown = _format_tick(value)
        lines.append(f"{str(label):>{gutter}} |{bar} {shown}")
    return "\n".join(lines)


def grouped_bar_chart(
    categories: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Bars grouped per category, one row per (category, series) pair."""
    if not categories or not series:
        raise ConfigError("grouped bar chart needs categories and series")
    for name, values in series.items():
        if len(values) != len(categories):
            raise ConfigError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
    finite = _finite([v for vals in series.values() for v in vals])
    if not finite:
        raise ConfigError("grouped bar chart needs a finite value")
    peak = max(max(finite), 0.0)
    gutter = max(len(str(n)) for n in series)
    lines = [title] if title else []
    for index, category in enumerate(categories):
        lines.append(f"{category}:")
        for name, values in series.items():
            value = values[index]
            if not math.isfinite(value):
                bar, shown = "?", "inf"
            else:
                length = 0 if peak == 0 else max(0, round(value / peak * width))
                bar = "#" * length
                shown = _format_tick(value)
            lines.append(f"  {str(name):>{gutter}} |{bar} {shown}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Binned distribution of a value list."""
    finite = _finite(values)
    if not finite:
        raise ConfigError("histogram needs at least one finite value")
    if bins <= 0:
        raise ConfigError(f"bin count must be positive, got {bins}")
    lo, hi = _span(min(finite), max(finite))
    step = (hi - lo) / bins
    counts = [0] * bins
    for v in finite:
        index = min(bins - 1, int((v - lo) / step))
        counts[index] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        left = lo + i * step
        bar = "#" * (0 if peak == 0 else round(count / peak * width))
        lines.append(f"{_format_tick(left):>10} |{bar} {count}")
    return "\n".join(lines)
