"""Live campaign status: what every cell is doing right now.

Built entirely from the registry's durable artifacts — ``result.json``
(complete), ``error.json`` (failed), ``lease.json`` (who is working the
cell, how fresh their heartbeat is), ``checkpoint.json`` presence, and
the tail of the streamed ``history.jsonl`` (current generation/step,
evaluations, best cost) — so a coordinator, a watching terminal, or a
CI job can render the same view any worker would derive, with no side
channel. Reading is cheap: only the last line of each history stream is
decoded (seek-from-end), so the view stays live even over big
registries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..experiments.reporting import format_table
from ..runs.registry import RunRegistry

#: How far from the end of a history stream to look for its last line.
_TAIL_BYTES = 4096


def tail_jsonl(path: str | Path) -> dict | None:
    """The last complete JSON object of a ``.jsonl`` file, or ``None``.

    Reads only the final block of the file, and is hardened against the
    stream writers' designed failure mode — a writer killed mid-append:

    * every complete record ends with a newline (writers emit line +
      ``"\\n"`` in one write), so a final line *without* one is torn and
      is skipped outright — even when its visible text happens to parse
      (a record truncated inside a number parses as a bare scalar);
    * only JSON *objects* are returned: the seek can land mid-line, and
      a line suffix that parses as a scalar is chunk-boundary garbage,
      not a record.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except FileNotFoundError:
        return None
    if size == 0:
        return None
    with path.open("rb") as fh:
        fh.seek(max(0, size - _TAIL_BYTES))
        chunk = fh.read().decode("utf-8", errors="replace")
    return _last_object(chunk)


def tail_jsonl_node(node, filename: str) -> dict | None:
    """:func:`tail_jsonl` over a registry transport node's stream.

    Same torn-tail hardening, same only-the-final-block read (the
    transport's ``read_tail`` maps to a ranged/suffix read).
    """
    chunk = node.read_tail(filename, _TAIL_BYTES)
    if not chunk:
        return None
    return _last_object(chunk)


def _last_object(chunk: str) -> dict | None:
    lines = chunk.splitlines()
    if lines and not chunk.endswith("\n"):
        lines = lines[:-1]
    for line in reversed(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            return record
    return None


@dataclass(frozen=True)
class CellStatus:
    """One cell's live state."""

    cell_id: str
    #: ``complete`` | ``failed`` | ``running`` | ``stalled`` (lease
    #: expired — a reclaim candidate) | ``exhausted`` (out of sample
    #: budget) | ``pending``
    state: str
    owner: str | None = None
    heartbeat_age: float | None = None
    #: Last streamed progress marker (generation for GA/NSGA, step for
    #: SA, monotonic tick for islands/two-step), when the cell has
    #: streamed any.
    progress: int | None = None
    evaluations: int | None = None
    best_cost: float | None = None
    #: Current cumulative sample cap (budgeted campaigns only).
    sample_cap: int | None = None
    #: Owner's cumulative evaluation counter from its heartbeat (leased
    #: cells whose worker enriches its renewals; see repro.distrib.lease).
    worker_evals: int | None = None
    #: Owner's start timestamp from its heartbeat — with
    #: ``worker_evals`` this yields per-worker eval throughput.
    worker_started_at: float | None = None


def campaign_snapshot(
    matrix, registry: RunRegistry, budget: int | None = None
) -> list[CellStatus]:
    """Probe every cell of ``matrix`` in matrix order."""
    from ..distrib.budget import campaign_progress, compute_allocations
    from ..distrib.lease import read_lease

    cells = matrix.cells()
    allocations = None
    if budget is not None:
        progress = campaign_progress(registry, cells, matrix.seed)
        allocations = compute_allocations(cells, budget, progress).allocations
    statuses = []
    for cell in cells:
        config = cell.config_dict()
        seed = cell.seed(matrix.seed)
        node = registry.run_node(config, seed)
        cap = allocations[cell.key] if allocations is not None else None
        tail = tail_jsonl_node(node, "history.jsonl") or {}
        progress_mark = tail.get(
            "tick", tail.get("generation", tail.get("step"))
        )
        evaluations = tail.get("evaluations")
        best_cost = tail.get("best_cost")
        if registry.is_complete(config, seed):
            result = registry.load(config, seed).load_result()
            statuses.append(
                CellStatus(
                    cell_id=cell.cell_id,
                    state="complete",
                    evaluations=result.get("num_evaluations"),
                    best_cost=result.get("best_cost"),
                    sample_cap=cap,
                )
            )
            continue
        if registry.has_error(config, seed):
            statuses.append(
                CellStatus(cell_id=cell.cell_id, state="failed", sample_cap=cap)
            )
            continue
        lease = read_lease(node)
        if lease is not None:
            statuses.append(
                CellStatus(
                    cell_id=cell.cell_id,
                    state="stalled" if lease.is_expired() else "running",
                    owner=lease.owner,
                    heartbeat_age=lease.age(),
                    progress=progress_mark,
                    evaluations=evaluations,
                    best_cost=best_cost,
                    sample_cap=cap,
                    worker_evals=lease.evals_done,
                    worker_started_at=lease.started_at,
                )
            )
            continue
        exhausted = (
            cap is not None
            and evaluations is not None
            and evaluations >= cap
        )
        statuses.append(
            CellStatus(
                cell_id=cell.cell_id,
                state="exhausted" if exhausted else "pending",
                progress=progress_mark,
                evaluations=evaluations,
                best_cost=best_cost,
                sample_cap=cap,
            )
        )
    return statuses


def render_campaign(statuses: list[CellStatus]) -> str:
    """ASCII status table, one row per cell, plus a tally line."""
    headers = ("cell", "state", "owner", "beat", "w_evals", "prog", "evals",
               "cap", "best_cost")
    rows = []
    for status in statuses:
        rows.append(
            (
                status.cell_id,
                status.state,
                status.owner or "-",
                (
                    f"{status.heartbeat_age:.0f}s"
                    if status.heartbeat_age is not None
                    else "-"
                ),
                (
                    status.worker_evals
                    if status.worker_evals is not None
                    else "-"
                ),
                status.progress if status.progress is not None else "-",
                status.evaluations if status.evaluations is not None else "-",
                status.sample_cap if status.sample_cap is not None else "-",
                (
                    f"{status.best_cost:.6g}"
                    if isinstance(status.best_cost, (int, float))
                    else "-"
                ),
            )
        )
    tally: dict[str, int] = {}
    for status in statuses:
        tally[status.state] = tally.get(status.state, 0) + 1
    summary = ", ".join(f"{count} {state}" for state, count in sorted(tally.items()))
    title = f"campaign status ({summary})"
    return format_table(headers, rows, title=title)
