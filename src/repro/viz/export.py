"""Export experiment results to CSV and JSON.

The experiment harness produces :class:`~repro.experiments.reporting.
ExperimentResult` objects (headers + rows + notes). These helpers turn
them into machine-readable files so the measured numbers can feed an
external plotting pipeline or a regression dashboard.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any

from ..errors import ConfigError
from ..experiments.reporting import ExperimentResult


def _plain(value: Any) -> Any:
    """Coerce cells to JSON-safe scalars, preserving numbers."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def result_to_csv(result: ExperimentResult) -> str:
    """Render a result as CSV text: header row, data rows, `#` note lines."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow([_plain(cell) for cell in row])
    for note in result.notes:
        buffer.write(f"# {note}\n")
    return buffer.getvalue()


def result_to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Render a result as a JSON document with headers, rows, and notes."""
    payload = {
        "experiment": result.experiment,
        "headers": list(result.headers),
        "rows": [[_plain(cell) for cell in row] for row in result.rows],
        "notes": list(result.notes),
        "extra": {key: _plain(value) for key, value in result.extra.items()},
    }
    return json.dumps(payload, indent=indent, default=str)


def read_result_json(path: str | Path) -> ExperimentResult:
    """Load an :class:`ExperimentResult` written by :func:`write_result`.

    The round trip is exact for JSON-native cell types (numbers, strings,
    booleans, ``None``): ``read_result_json(write_result(r, p))`` merges
    and renders identically. The suite smoke job uses this to compare a
    killed-and-resumed campaign's report against a clean run's.
    """
    payload = json.loads(Path(path).read_text())
    result = ExperimentResult(
        experiment=payload["experiment"],
        headers=tuple(payload["headers"]),
        notes=list(payload.get("notes", [])),
        extra=dict(payload.get("extra", {})),
    )
    for row in payload["rows"]:
        result.add_row(*row)
    return result


def write_result(
    result: ExperimentResult, path: str | Path, fmt: str | None = None
) -> Path:
    """Write a result to ``path`` as CSV or JSON (inferred from suffix).

    Returns the written path. Unknown formats raise :class:`ConfigError`.
    """
    path = Path(path)
    chosen = fmt or path.suffix.lstrip(".").lower()
    if chosen == "csv":
        text = result_to_csv(result)
    elif chosen == "json":
        text = result_to_json(result)
    else:
        raise ConfigError(
            f"unknown export format {chosen!r} (expected 'csv' or 'json')"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path
