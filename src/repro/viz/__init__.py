"""Terminal visualization and result export.

The paper's evaluation is figures and tables; this package renders both
without a plotting stack: ASCII line charts for the Fig 12 convergence
curves, bar charts for the Fig 3/11 comparisons, scatter plots for the
Fig 13 sample-distribution drift, and CSV/JSON exporters so the numbers
can leave the terminal for a real plotting pipeline.
"""

from .campaign import CellStatus, campaign_snapshot, render_campaign, tail_jsonl
from .charts import bar_chart, grouped_bar_chart, histogram, line_chart, scatter_chart
from .export import result_to_csv, result_to_json, write_result

__all__ = [
    "line_chart",
    "scatter_chart",
    "bar_chart",
    "grouped_bar_chart",
    "histogram",
    "result_to_csv",
    "result_to_json",
    "write_result",
    "CellStatus",
    "campaign_snapshot",
    "render_campaign",
    "tail_jsonl",
]
