"""Multi-core, multi-batch subgraph pricing.

Extends the single-core evaluator (Sec 5.4.2-5.4.3):

* ``num_cores`` cores split each subgraph spatially: per-core activation
  footprint and compute time shrink by the core count, the per-core
  16 GB/s DRAM links aggregate, and weights are sharded (each core caches
  ``W / C``) at the price of ``W * (C - 1)`` bytes of crossbar rotation
  per sample.
* ``batch`` samples are processed back-to-back per subgraph, reusing the
  cached weights across samples (inter-sample reuse): activation traffic,
  MACs, and rotation scale with the batch while one-time weight loads do
  not.

Capacities in the searched :class:`MemoryConfig` are *per core*, matching
Table 3's "Size denotes the shared buffer size in each core".
"""

from __future__ import annotations

from dataclasses import replace

from ..config import AcceleratorConfig, BufferMode, MemoryConfig
from ..cost.ema import SubgraphProfile, cached_weight_selection
from ..cost.energy import subgraph_energy
from ..cost.evaluator import Evaluator, SubgraphCost
from ..cost.latency import compute_cycles, dram_cycles
from ..errors import ConfigError
from ..graphs.graph import ComputationGraph
from .crossbar import crossbar_cycles, crossbar_energy_pj
from .weight_sharing import shard_weights


class MultiCoreEvaluator(Evaluator):
    """Prices subgraphs on a ``num_cores`` x ``batch`` configuration.

    Drop-in compatible with :class:`~repro.cost.evaluator.Evaluator`, so
    the same GA / SA / DSE machinery co-explores multi-core designs.
    """

    def __init__(
        self,
        graph: ComputationGraph,
        accel: AcceleratorConfig | None = None,
        batch: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(graph, accel, **kwargs)
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")
        self.batch = batch
        self.num_cores = self.accel.num_cores

    def feasible(self, members, memory: MemoryConfig | None = None) -> bool:
        """Per-core variant of the repair fast path.

        A subgraph fits exactly when the smallest tile option's *per-core*
        activation share fits the per-core activation capacity.
        """
        memory = memory or self.accel.memory
        profile = self.profile(members)
        per_core = -(-profile.min_activation_bytes // self.num_cores)
        return per_core <= memory.activation_capacity

    def _price(self, profile: SubgraphProfile, memory: MemoryConfig) -> SubgraphCost:
        cores = self.num_cores
        batch = self.batch
        accel = self.accel
        shard = shard_weights(profile.weight_bytes, cores)
        best: SubgraphCost | None = None

        for option in profile.tile_options:
            per_core_act = -(-option.activation_bytes // cores)
            if memory.mode is BufferMode.SEPARATE:
                if per_core_act > memory.global_buffer_bytes:
                    continue
                per_core_budget = memory.weight_buffer_bytes
            else:
                per_core_budget = memory.shared_buffer_bytes - per_core_act
                if per_core_budget < 0:
                    continue
            # Sharding multiplies the effective cache: each core holds 1/C.
            cache_budget = per_core_budget * cores
            cached_nodes, cached_bytes = cached_weight_selection(
                profile.layer_weights, cache_budget
            )
            uncached = profile.weight_bytes - cached_bytes
            # Cached weights load once; uncached re-stream per elementary
            # operation of every sample in the batch.
            weight_ema = cached_bytes + uncached * option.num_elementary_ops * batch
            ema = weight_ema + profile.io_bytes * batch
            if best is not None and ema > best.ema_bytes:
                continue
            if (
                best is not None
                and ema == best.ema_bytes
                and option.tile_rows <= best.tile_rows
            ):
                continue

            rotation = shard.rotation_bytes_per_sample * batch
            energy = subgraph_energy(
                accel,
                memory,
                ema_bytes=ema,
                activation_traffic_bytes=2
                * (profile.input_bytes + profile.member_activation_bytes)
                * batch,
                weight_write_bytes=weight_ema,
                weight_read_bytes=profile.weight_bytes
                * option.num_elementary_ops
                * batch,
                macs=profile.macs * batch,
            )
            energy = replace(
                energy, crossbar_pj=crossbar_energy_pj(accel, rotation)
            )
            compute = compute_cycles(accel, profile.macs * batch) / cores
            dram = dram_cycles(accel, ema) / cores
            xbar = crossbar_cycles(accel, rotation)
            best = SubgraphCost(
                profile=profile,
                feasible=True,
                tile_rows=option.tile_rows,
                num_elementary_ops=option.num_elementary_ops,
                cached_weight_nodes=cached_nodes,
                cached_weight_bytes=cached_bytes,
                weight_ema_bytes=weight_ema,
                ema_bytes=ema,
                energy=energy,
                compute_cycles=compute,
                latency_cycles=max(compute, dram, xbar),
            )
        if best is not None:
            return best
        return SubgraphCost(
            profile=profile,
            feasible=False,
            tile_rows=0,
            num_elementary_ops=0,
            cached_weight_nodes=(),
            cached_weight_bytes=0,
            weight_ema_bytes=0,
            ema_bytes=int(1e18),
            energy=None,
            compute_cycles=compute_cycles(accel, profile.macs * batch) / cores,
            latency_cycles=float("inf"),
        )
