"""Weight sharding across cores (BSD in Tangram / rotation in NN-Baton).

"Different cores only buffer a subset of weights and transfer the data
between cores" (Sec 5.4.2): a subgraph's weights are split into
``num_cores`` shards; every core processes its own spatial slice of every
layer, so each shard must visit every core once per sample — the shard
rotates around the ring/crossbar, generating ``W * (C - 1)`` bytes of
inter-core traffic per sample while DRAM loads each weight only once in
total.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class WeightShardPlan:
    """How one subgraph's weights are distributed over the cores."""

    total_weight_bytes: int
    num_cores: int
    shard_bytes: int
    rotation_bytes_per_sample: int

    @property
    def per_core_buffer_bytes(self) -> int:
        """Weight-buffer bytes one core needs for its resident shard."""
        return self.shard_bytes


def shard_weights(total_weight_bytes: int, num_cores: int) -> WeightShardPlan:
    """Build the shard plan for a subgraph's weights."""
    if num_cores <= 0:
        raise ConfigError(f"core count must be positive, got {num_cores}")
    if total_weight_bytes < 0:
        raise ConfigError("weight bytes must be non-negative")
    shard = -(-total_weight_bytes // num_cores)
    rotation = total_weight_bytes * (num_cores - 1)
    return WeightShardPlan(
        total_weight_bytes=total_weight_bytes,
        num_cores=num_cores,
        shard_bytes=shard,
        rotation_bytes_per_sample=rotation,
    )
