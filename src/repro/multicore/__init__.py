"""Multi-core scaling and batch processing (Sec 5.4.2-5.4.3)."""

from .crossbar import crossbar_cycles, crossbar_energy_pj
from .weight_sharing import WeightShardPlan, shard_weights
from .scheduler import MultiCoreEvaluator

__all__ = [
    "crossbar_cycles",
    "crossbar_energy_pj",
    "WeightShardPlan",
    "shard_weights",
    "MultiCoreEvaluator",
]
