"""Crossbar interconnect cost model.

Cores exchange weight shards over a crossbar (the paper extracts the
overhead from an implemented Arteris IP). The model charges a per-byte
transfer energy and bounds throughput with an aggregate bandwidth.
"""

from __future__ import annotations

from ..config import AcceleratorConfig


def crossbar_energy_pj(accel: AcceleratorConfig, transfer_bytes: float) -> float:
    """Energy to move ``transfer_bytes`` between cores."""
    return transfer_bytes * accel.crossbar_pj_per_byte


def crossbar_cycles(accel: AcceleratorConfig, transfer_bytes: float) -> float:
    """Cycles the crossbar needs for ``transfer_bytes``."""
    bytes_per_cycle = accel.crossbar_bandwidth / accel.frequency_hz
    return transfer_bytes / bytes_per_cycle
