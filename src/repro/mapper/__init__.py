"""Single-layer mapper: stage-1 of the execution flow (Sec 3.1, Fig 5).

The paper's three-stage flow delegates its first stage to a "single-layer
mapper" that picks output tile sizes for high computation utilization, and
Sec 5.1.2 notes that "the parallelism of two dimensions of the PE array can
be dynamically configured by the mapper results to ensure high utilization".
This package is that mapper: a Timeloop-lite search over

* which loop dimensions (output channels K, input channels C, output rows
  H, output columns W) the two PE-array axes parallelize,
* which dataflow (weight-, output-, or input-stationary) orders the
  temporal loops,

evaluating each candidate's PE-array utilization and on-chip buffer
traffic. The result feeds the cost model two ways: per-layer utilization
replaces the flat ``pe_utilization`` constant
(:func:`calibrated_accelerator`), and the access counts price the
global/weight buffer energy of a mapping.
"""

from .space import (
    Dataflow,
    Dim,
    LoopDims,
    Mapping,
    SpatialMapping,
    enumerate_mappings,
    enumerate_spatial,
)
from .evaluate import BufferTraffic, MappingEvaluation, evaluate_mapping
from .mapper import GraphMapping, LayerMapping, map_graph, map_layer
from .utilization import (
    GraphUtilization,
    calibrated_accelerator,
    graph_utilization,
    subgraph_compute_cycles,
)

__all__ = [
    "Dim",
    "LoopDims",
    "SpatialMapping",
    "Dataflow",
    "Mapping",
    "enumerate_spatial",
    "enumerate_mappings",
    "BufferTraffic",
    "MappingEvaluation",
    "evaluate_mapping",
    "LayerMapping",
    "GraphMapping",
    "map_layer",
    "map_graph",
    "GraphUtilization",
    "graph_utilization",
    "calibrated_accelerator",
    "subgraph_compute_cycles",
]
