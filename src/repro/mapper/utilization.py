"""Bridging mapper results into the cost model.

The cost model's latency path uses a single ``pe_utilization`` scalar
(DESIGN.md calibrates it to 0.85). The mapper replaces that guess with a
measured number: the MAC-weighted mean utilization of the actual layers,
under the best per-layer spatial configuration. :func:`calibrated_accelerator`
returns an accelerator whose scalar is that measurement, so every
downstream evaluator, search, and experiment picks it up without code
changes — and :func:`subgraph_compute_cycles` offers the exact per-layer
sum when aggregate scaling is too coarse.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from ..config import AcceleratorConfig
from ..errors import ConfigError
from ..graphs.graph import ComputationGraph
from .mapper import GraphMapping, map_graph


@dataclass(frozen=True)
class GraphUtilization:
    """Utilization summary of one graph under the mapper's choices."""

    per_layer: dict[str, float]
    mean: float
    macs_weighted: float

    def __getitem__(self, name: str) -> float:
        return self.per_layer[name]


def graph_utilization(
    graph: ComputationGraph,
    accel: AcceleratorConfig | None = None,
    mapping: GraphMapping | None = None,
) -> GraphUtilization:
    """Measure per-layer and aggregate utilization for a graph."""
    accel = accel or AcceleratorConfig()
    mapping = mapping or map_graph(graph, accel)
    per_layer = {name: m.utilization for name, m in mapping.layers.items()}
    mean = mapping.mean_utilization
    return GraphUtilization(
        per_layer=per_layer,
        mean=mean,
        macs_weighted=mapping.macs_weighted_utilization(),
    )


def calibrated_accelerator(
    accel: AcceleratorConfig,
    graph: ComputationGraph,
    mapping: GraphMapping | None = None,
) -> AcceleratorConfig:
    """Return a copy of ``accel`` with mapper-measured utilization.

    Raises :class:`ConfigError` when the graph has no compute layers to
    measure (utilization would be zero and break the latency model).
    """
    mapping = mapping or map_graph(graph, accel)
    weighted = mapping.macs_weighted_utilization()
    if weighted <= 0:
        raise ConfigError(
            "cannot calibrate utilization: graph has no mapped compute layers"
        )
    return replace(accel, pe_utilization=weighted)


def subgraph_compute_cycles(
    graph: ComputationGraph,
    members: Iterable[str],
    accel: AcceleratorConfig,
    mapping: GraphMapping,
) -> float:
    """Exact per-layer compute cycles of a subgraph under the mapping.

    The scalar model divides aggregate MACs by an average throughput; this
    sums each member layer's own mapped cycle count instead, which differs
    whenever a subgraph mixes high- and low-utilization layers.
    """
    total = 0.0
    for name in members:
        if graph.layer(name).is_input:
            continue
        if name not in mapping:
            raise ConfigError(f"layer {name!r} missing from the graph mapping")
        total += mapping[name].compute_cycles
    return total
