"""The single-layer mapper: search the mapping space per layer.

For each layer the mapper enumerates every (spatial assignment, dataflow)
pair, ranks by utilization first and the cycles-times-traffic product
second, and returns the winner. Layers with identical loop extents share
one search (DNNs repeat shapes constantly — ResNet50's 53 convolutions
collapse to ~20 distinct nests), so mapping a whole graph costs tens of
searches, not hundreds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig
from ..errors import SearchError
from ..graphs.graph import ComputationGraph
from ..graphs.ops import LayerSpec, OpKind
from .evaluate import MappingEvaluation, evaluate_mapping, is_weightless
from .space import LoopDims, enumerate_mappings


@dataclass(frozen=True)
class LayerMapping:
    """The chosen mapping of one layer plus search metadata."""

    layer: str
    dims: LoopDims
    best: MappingEvaluation
    candidates: int

    @property
    def utilization(self) -> float:
        return self.best.utilization

    @property
    def compute_cycles(self) -> int:
        return self.best.compute_cycles


@dataclass(frozen=True)
class GraphMapping:
    """Per-layer mappings for every compute layer of one graph."""

    layers: dict[str, LayerMapping]

    def __getitem__(self, name: str) -> LayerMapping:
        return self.layers[name]

    def __contains__(self, name: str) -> bool:
        return name in self.layers

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def mean_utilization(self) -> float:
        """Unweighted mean utilization across layers."""
        if not self.layers:
            return 0.0
        return sum(m.utilization for m in self.layers.values()) / len(self.layers)

    def macs_weighted_utilization(self) -> float:
        """MAC-weighted mean utilization — the number that matters.

        Equivalent to total MACs over total cycles at peak lane count:
        big layers dominate runtime, so they dominate the average.
        """
        total_macs = sum(m.dims.macs for m in self.layers.values())
        if total_macs == 0:
            return 0.0
        weighted = sum(
            m.utilization * m.dims.macs for m in self.layers.values()
        )
        return weighted / total_macs


def select_best(
    evaluations: list[MappingEvaluation],
) -> MappingEvaluation:
    """Rank candidates: utilization down, then cycles-x-traffic up."""
    if not evaluations:
        raise SearchError("mapping search produced no candidates")
    return min(
        evaluations,
        key=lambda e: (-e.utilization, e.cycles_x_traffic, e.mapping.describe()),
    )


def map_dims(
    dims: LoopDims, accel: AcceleratorConfig, weightless: bool = False
) -> tuple[MappingEvaluation, int]:
    """Exhaustively search one loop nest; returns (winner, #candidates)."""
    evaluations = [
        evaluate_mapping(dims, mapping, accel, weightless=weightless)
        for mapping in enumerate_mappings(dims, accel)
    ]
    return select_best(evaluations), len(evaluations)


def map_layer(
    spec: LayerSpec,
    accel: AcceleratorConfig | None = None,
    in_channels: int | None = None,
) -> LayerMapping:
    """Map a single layer onto the PE array."""
    accel = accel or AcceleratorConfig()
    dims = LoopDims.from_spec(spec, in_channels=in_channels)
    best, count = map_dims(dims, accel, weightless=is_weightless(spec))
    return LayerMapping(layer=spec.name, dims=dims, best=best, candidates=count)


def _graph_in_channels(graph: ComputationGraph, name: str) -> int | None:
    """Input channel count of a layer from its producers (sum over inputs).

    Concat consumes the channel sum; everything else reads tensors of
    equal channel count, for which the sum collapses to the common value
    via the first producer.
    """
    producers = graph.predecessors(name)
    if not producers:
        return None
    channels = [graph.layer(p).shape.channels for p in producers]
    spec = graph.layer(name)
    if spec.op is OpKind.CONCAT:
        return sum(channels)
    return channels[0]


def map_graph(
    graph: ComputationGraph, accel: AcceleratorConfig | None = None
) -> GraphMapping:
    """Map every compute layer of a graph, deduplicating by loop extents."""
    accel = accel or AcceleratorConfig()
    cache: dict[tuple[LoopDims, bool], tuple[MappingEvaluation, int]] = {}
    layers: dict[str, LayerMapping] = {}
    for name in graph.topological_order():
        spec = graph.layer(name)
        if spec.is_input:
            continue
        dims = LoopDims.from_spec(spec, in_channels=_graph_in_channels(graph, name))
        key = (dims, is_weightless(spec))
        if key not in cache:
            cache[key] = map_dims(dims, accel, weightless=key[1])
        best, count = cache[key]
        layers[name] = LayerMapping(layer=name, dims=dims, best=best, candidates=count)
    return GraphMapping(layers=layers)
