"""The mapping search space: loop dimensions, spatial unrolls, dataflows.

A convolution (or any of the normalized ops of :mod:`repro.graphs.ops`)
iterates four tileable loop dimensions — output channels ``K``, input
channels ``C``, output rows ``H``, output columns ``W`` — plus the kernel
window, which stays temporal on this PE array. The mapper assigns one loop
dimension to each of the two configurable PE-array axes (the paper's
"parallelism of two dimensions"); inside a PE, the 8x8 MAC array fixes an
8-way ``C`` by 8-way ``K`` vector product for dense ops, and an 8-way
channel vector for depth-wise ops (which have no cross-channel reduction
to feed the second axis).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from ..config import AcceleratorConfig
from ..errors import ConfigError, ShapeError
from ..graphs.ops import LayerSpec, OpKind


class Dim(Enum):
    """A tileable loop dimension of one layer."""

    K = "K"  # output channels
    C = "C"  # input channels (reduction)
    H = "H"  # output rows
    W = "W"  # output columns


class Dataflow(Enum):
    """Temporal loop-ordering style: which datum stays put in the PE.

    * ``WEIGHT_STATIONARY`` — weights are fetched once; inputs re-stream
      per output-channel tile and partial sums bounce per input-channel
      tile (NVDLA, NeuFlow).
    * ``OUTPUT_STATIONARY`` — partial sums never leave the PE until final;
      weights re-stream per output-pixel tile (ShiDianNao, Envision).
    * ``INPUT_STATIONARY`` — inputs are fetched once; weights re-stream
      per output-pixel tile and partial sums bounce (SCNN).
    """

    WEIGHT_STATIONARY = "ws"
    OUTPUT_STATIONARY = "os"
    INPUT_STATIONARY = "is"


@dataclass(frozen=True)
class LoopDims:
    """Loop-nest extents of one layer, normalized for the mapper.

    ``reduction_free`` marks depth-wise-style ops (pool, eltwise, dwconv):
    each output channel reads exactly one input channel, so the PE's
    C-by-K inner array degrades to an 8-wide channel vector.
    """

    k: int
    c: int
    h: int
    w: int
    kernel_taps: int
    reduction_free: bool = False

    def __post_init__(self) -> None:
        if min(self.k, self.c, self.h, self.w, self.kernel_taps) <= 0:
            raise ShapeError(f"loop extents must be positive, got {self}")

    @property
    def macs(self) -> int:
        """Total multiply-accumulates the loop nest performs."""
        if self.reduction_free:
            return self.k * self.h * self.w * self.kernel_taps
        return self.k * self.c * self.h * self.w * self.kernel_taps

    def size(self, dim: Dim) -> int:
        """Extent of one loop dimension."""
        return {Dim.K: self.k, Dim.C: self.c, Dim.H: self.h, Dim.W: self.w}[dim]

    @staticmethod
    def from_spec(spec: LayerSpec, in_channels: int | None = None) -> "LoopDims":
        """Derive loop extents from a layer spec.

        ``in_channels`` comes from the producer tensors in graph context;
        without it, dense ops reconstruct C from the MAC count and
        depth-wise ops use their own channel count.
        """
        if spec.is_input:
            raise ShapeError(f"input node {spec.name!r} has no loop nest to map")
        out = spec.shape
        taps = max(1, spec.kernel * spec.kernel)
        reduction_free = spec.op in (OpKind.DWCONV, OpKind.POOL, OpKind.ELTWISE,
                                     OpKind.CONCAT, OpKind.UPSAMPLE)
        if reduction_free:
            # MACs = K*H*W*taps by construction; keep taps consistent with
            # the recorded MAC count (global pooling uses kernel = height).
            taps = max(1, spec.macs // max(1, out.elements))
            return LoopDims(
                k=out.channels, c=1, h=out.height, w=out.width,
                kernel_taps=taps, reduction_free=True,
            )
        if in_channels is None:
            denominator = out.elements * taps
            in_channels = max(1, spec.macs // max(1, denominator))
        return LoopDims(
            k=out.channels,
            c=max(1, in_channels),
            h=out.height,
            w=out.width,
            kernel_taps=max(1, spec.macs // max(1, out.elements * in_channels)),
        )


@dataclass(frozen=True)
class SpatialMapping:
    """Assignment of loop dimensions to the two PE-array axes.

    ``rows_dim``/``cols_dim`` may name the same dimension, in which case it
    unrolls across the whole ``rows x cols`` array.
    """

    rows_dim: Dim
    cols_dim: Dim
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigError(f"PE-array axes must be positive, got {self}")

    def array_factor(self, dim: Dim) -> int:
        """Array-level parallelism granted to ``dim`` (1 if unassigned)."""
        factor = 1
        if self.rows_dim is dim:
            factor *= self.rows
        if self.cols_dim is dim:
            factor *= self.cols
        return factor

    def describe(self) -> str:
        return f"rows={self.rows_dim.value}*{self.rows}, cols={self.cols_dim.value}*{self.cols}"


@dataclass(frozen=True)
class Mapping:
    """One point of the mapping space: spatial unroll + dataflow."""

    spatial: SpatialMapping
    dataflow: Dataflow

    def describe(self) -> str:
        return f"{self.dataflow.value}({self.spatial.describe()})"


#: Inner-PE vector widths of the 8x8 MAC array for dense ops.
PE_INNER_C = 8
PE_INNER_K = 8


def spatial_factor(mapping: SpatialMapping, dims: LoopDims, dim: Dim) -> int:
    """Total spatial parallelism granted to ``dim`` (array x inner PE)."""
    factor = mapping.array_factor(dim)
    if dims.reduction_free:
        # The 8x8 inner array degrades to an 8-wide channel vector.
        if dim is Dim.K:
            factor *= PE_INNER_K
    else:
        if dim is Dim.K:
            factor *= PE_INNER_K
        if dim is Dim.C:
            factor *= PE_INNER_C
    return factor


def temporal_trips(mapping: SpatialMapping, dims: LoopDims) -> dict[Dim, int]:
    """Temporal trip count per dimension after spatial unrolling."""
    return {
        dim: math.ceil(dims.size(dim) / spatial_factor(mapping, dims, dim))
        for dim in Dim
    }


def enumerate_spatial(
    dims: LoopDims, accel: AcceleratorConfig
) -> Iterator[SpatialMapping]:
    """All distinct assignments of loop dims to the two PE-array axes.

    Depth-wise ops skip ``C`` (its extent is 1, parallelizing it idles the
    axis); dimensions with extent 1 are skipped for the same reason unless
    nothing else is available.
    """
    candidates = [d for d in Dim if dims.size(d) > 1]
    if not candidates:
        candidates = [Dim.K]
    for rows_dim in candidates:
        for cols_dim in candidates:
            yield SpatialMapping(
                rows_dim=rows_dim,
                cols_dim=cols_dim,
                rows=accel.pe_rows,
                cols=accel.pe_cols,
            )


def enumerate_mappings(
    dims: LoopDims, accel: AcceleratorConfig
) -> Iterator[Mapping]:
    """The full candidate space: every spatial assignment x dataflow."""
    for spatial in enumerate_spatial(dims, accel):
        for dataflow in Dataflow:
            yield Mapping(spatial=spatial, dataflow=dataflow)
