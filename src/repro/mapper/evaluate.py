"""Analytical evaluation of one mapping: utilization and buffer traffic.

The model follows Timeloop's accounting at a single level of hierarchy
(the on-chip buffers feeding the PE array):

* **Utilization** is the fraction of peak MACs the spatial unroll can keep
  busy: every dimension mapped onto more lanes than its extent (or onto a
  non-divisor lane count) idles the remainder on its last iteration.
* **Buffer traffic** counts the bytes each datum class (inputs, weights,
  partial sums) moves between the global/weight buffers and the PE array,
  given the dataflow's stationarity. The stationary datum is fetched once;
  the others are re-fetched once per temporal trip of the loop dimensions
  they do not depend on (the standard reuse-distance argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import AcceleratorConfig
from ..graphs.ops import LayerSpec
from .space import (
    Dataflow,
    Dim,
    LoopDims,
    Mapping,
    temporal_trips,
)


@dataclass(frozen=True)
class BufferTraffic:
    """Bytes moved between on-chip buffers and the PE array."""

    input_bytes: int
    weight_bytes: int
    psum_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.input_bytes + self.weight_bytes + self.psum_bytes


@dataclass(frozen=True)
class MappingEvaluation:
    """Utilization and traffic of one mapping of one layer."""

    mapping: Mapping
    utilization: float
    compute_cycles: int
    traffic: BufferTraffic

    @property
    def cycles_x_traffic(self) -> float:
        """Latency-traffic product: the mapper's tie-breaking objective.

        A cheap stand-in for energy-delay product that needs no energy
        constants — minimizing it favors mappings that are both fast and
        reuse-friendly.
        """
        return self.compute_cycles * self.traffic.total_bytes


def _input_elements(dims: LoopDims) -> int:
    """Elements of the input tensor the loop nest reads (without reuse).

    The mapper prices the unique input footprint: ``C`` channels across an
    ``H x W`` spatial extent (windows overlap, but overlapping rows live in
    the buffer once — the MAIN/SIDE scheme of Sec 3.2 guarantees it).
    """
    return dims.c * dims.h * dims.w if not dims.reduction_free else dims.k * dims.h * dims.w


def _weight_elements(dims: LoopDims) -> int:
    """Elements of the weight tensor (zero for weight-less ops)."""
    if dims.reduction_free:
        return dims.k * dims.kernel_taps
    return dims.k * dims.c * dims.kernel_taps


def _output_elements(dims: LoopDims) -> int:
    return dims.k * dims.h * dims.w


def evaluate_mapping(
    dims: LoopDims,
    mapping: Mapping,
    accel: AcceleratorConfig,
    weightless: bool = False,
) -> MappingEvaluation:
    """Evaluate utilization, cycles, and buffer traffic of one mapping.

    ``weightless`` marks ops whose "weights" do not exist as tensors
    (pooling windows, element-wise adds): their weight traffic is zero
    regardless of dataflow.
    """
    trips = temporal_trips(mapping.spatial, dims)
    total_trips = math.prod(trips.values())
    compute_cycles = total_trips * dims.kernel_taps

    lanes = accel.macs_per_cycle
    utilization = dims.macs / (compute_cycles * lanes)
    # Guard against >1 from inner-PE degradation bookkeeping.
    utilization = min(1.0, utilization)

    byte = accel.bytes_per_element
    inputs = _input_elements(dims) * byte
    weights = 0 if weightless else _weight_elements(dims) * byte
    outputs = _output_elements(dims) * byte
    # Partial sums are wider than activations (24-bit in Simba for 8-bit
    # inputs); 3x is the paper-adjacent ratio, rounded to whole bytes.
    psum_byte = 3 * byte

    t_k, t_c = trips[Dim.K], trips[Dim.C]
    t_hw = trips[Dim.H] * trips[Dim.W]
    flow = mapping.dataflow
    if flow is Dataflow.WEIGHT_STATIONARY:
        weight_traffic = weights
        input_traffic = inputs * t_k
        psum_traffic = outputs * psum_byte * max(1, 2 * t_c - 1)
    elif flow is Dataflow.OUTPUT_STATIONARY:
        weight_traffic = weights * t_hw
        input_traffic = inputs * t_k
        psum_traffic = outputs * psum_byte
    else:  # INPUT_STATIONARY
        weight_traffic = weights * t_hw
        input_traffic = inputs
        psum_traffic = outputs * psum_byte * max(1, 2 * t_c - 1)

    return MappingEvaluation(
        mapping=mapping,
        utilization=utilization,
        compute_cycles=compute_cycles,
        traffic=BufferTraffic(
            input_bytes=int(input_traffic),
            weight_bytes=int(weight_traffic),
            psum_bytes=int(psum_traffic),
        ),
    )


def is_weightless(spec: LayerSpec) -> bool:
    """Whether the layer moves no weight tensor (pool/eltwise/matmul)."""
    return spec.weight_bytes == 0
