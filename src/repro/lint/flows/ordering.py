"""RL105 — sets are iterated sorted in order-sensitive zones.

``set``/``frozenset`` iteration order depends on the hash seed and the
full insertion/deletion history — two processes that built "the same"
set can disagree about it. Any loop whose body's *effect* depends on
element order (appending, pricing in sequence, feeding an RNG, writing
output) then silently diverges across runs and machines.

Membership tests, ``len()``, and aggregations are order-insensitive and
pass; this rule flags only the operations that *observe* the order:

* ``for x in s`` / comprehension generators over a set-typed value,
* materializations — ``list(s)``, ``tuple(s)``, ``enumerate(s)``,
  ``"".join(s)``,
* ``s.pop()`` (removes an arbitrary, order-dependent element).

Set-typedness is inferred locally and conservatively: literals,
comprehensions, ``set(...)``/``frozenset(...)`` calls, names assigned
from those in the same scope, set-operator expressions (``|&-^``) over
them, and parameters/variables annotated ``set[...]``. When the rule
cannot prove a value is a set, it stays silent — it proves violations,
it does not guess.

Fix with ``sorted(s)``; when order provably cannot matter, keep the raw
iteration under a ``# repro-lint: allow[RL105] -- <proof>`` pragma so
the reasoning survives review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..names import attr_chain, parent_map


def _feeds_sorted(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    parent = parents.get(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
        and bool(parent.args)
        and parent.args[0] is node
    )

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    base = (
        annotation.value
        if isinstance(annotation, ast.Subscript)
        else annotation
    )
    chain = attr_chain(base)
    return chain is not None and chain.split(".")[-1] in {
        "set",
        "frozenset",
        "Set",
        "FrozenSet",
        "AbstractSet",
        "MutableSet",
    }


class _ScopeSets:
    """Set-typed names of one function (or module) scope."""

    def __init__(self, scope: ast.AST) -> None:
        self.names: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if _is_set_annotation(arg.annotation):
                    self.names.add(arg.arg)
        # Two passes so chained assignments (b = a; for x in b) resolve.
        for _ in range(2):
            for node in _scope_walk(scope):
                self._visit(node)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            if self.is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.names.add(target.id)
            else:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.names.discard(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _is_set_annotation(node.annotation) or (
                node.value is not None and self.is_set_expr(node.value)
            ):
                self.names.add(node.target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            # s |= other keeps s a set; s += other never applies to sets.
            if not isinstance(node.op, _SET_OPS):
                self.names.discard(node.target.id)

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _SET_CONSTRUCTORS
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set_expr(node.left) or self.is_set_expr(
                node.right
            )
        if isinstance(node, ast.Attribute):
            # s.copy(), s.union(...) — only when the receiver is known.
            return False
        return False


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function scopes."""
    # Breadth-first in source order, so assignment effects in _ScopeSets
    # are applied statement-before-statement at each nesting level.
    queue = list(ast.iter_child_nodes(scope))
    while queue:
        node = queue.pop(0)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        queue.extend(ast.iter_child_nodes(node))


class SetIterationRule:
    """RL105: iterate sets via sorted() where order can leak out."""

    rule_id = "RL105"
    name = "unordered-set-iteration"
    summary = (
        "set iteration order is hash-seed dependent; iterate "
        "sorted(s), or pragma with a proof of order-insensitivity"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        parents = parent_map(module.tree)
        scopes: list[ast.AST] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            sets = _ScopeSets(scope)
            for node in _scope_walk(scope):
                yield from self._check_node(node, sets, module, parents)

    def _check_node(
        self,
        node: ast.AST,
        sets: _ScopeSets,
        module: ModuleSource,
        parents: dict[ast.AST, ast.AST],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)) and sets.is_set_expr(
            node.iter
        ):
            yield self._finding(module, node.iter, "for-loop over")
        elif isinstance(
            node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
        ):
            # SetComp over a set is exempt: the result is unordered
            # again, so no visit order escapes. List/dict/generator
            # comprehensions materialize it — unless sorted() consumes
            # the comprehension directly, which pins the order anyway.
            if _feeds_sorted(node, parents):
                return
            for generator in node.generators:
                if sets.is_set_expr(generator.iter):
                    yield self._finding(
                        module, generator.iter, "comprehension over"
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _MATERIALIZERS
                and node.args
                and sets.is_set_expr(node.args[0])
            ):
                yield self._finding(
                    module, node, f"{func.id}() materialization of"
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and sets.is_set_expr(node.args[0])
            ):
                yield self._finding(module, node, ".join() over")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "pop"
                and not node.args
                and isinstance(func.value, ast.Name)
                and func.value.id in sets.names
            ):
                yield self._finding(
                    module, node, "arbitrary-element .pop() from"
                )

    def _finding(
        self, module: ModuleSource, node: ast.AST, what: str
    ) -> Finding:
        return finding_at(
            module.path,
            node,
            self.rule_id,
            f"{what} a set: element order depends on the hash seed and "
            "insertion history and differs across processes — iterate "
            "sorted(...) instead, or pragma with a proof that order "
            "cannot matter",
        )
