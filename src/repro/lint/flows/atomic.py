"""RL102 — the atomic-write temp file must be promoted on *all* paths.

The flow-aware RL004 accepts a temp-file write whenever the temp name
reaches an ``os.replace``/``os.rename``/``os.link`` promotion later in
the same function — anywhere. That is the right bar for a per-file
rule, but it accepts this::

    tmp.write_text(payload)
    if validate(payload):
        os.replace(tmp, path)      # promoted only when validation passes

A crash-free run through the ``else`` path leaves the temp file
stranded and the durable artifact stale — readers then trust content
the writer never promoted. The deep rule checks *path coverage*: every
write to a temp name must be dominated by some promotion of that name,
meaning a promotion exists whose conditional context is a prefix of the
write's own.

Context is the chain of conditional branches around a statement:
``if``/``elif``/``else`` arms, loop bodies, and ``except`` handlers
each add a frame; ``try`` bodies, ``finally`` blocks, and ``with``
bodies are transparent (they execute whenever control reaches them).
A promotion dominates a write iff its context is a prefix of the
write's context — same branch path, equal or lower conditional depth.

When a function contains *no* promotion of the name at all, RL004
already reports it; this rule stays silent to avoid double findings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..names import ModuleResolver, parent_map
from ..rules.writes import NonAtomicWriteRule, promoted_name

#: One conditional frame: (id of the branching statement, arm label).
_Context = tuple[tuple[int, str], ...]


def _branch_context(
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
    scope: ast.AST,
) -> _Context:
    """Conditional frames between ``scope``'s body and ``node``."""
    frames: list[tuple[int, str]] = []
    child = node
    current = parents.get(node)
    while current is not None and current is not scope:
        if isinstance(current, ast.If):
            arm = "body" if child in current.body else "orelse"
            if child in current.body or child in current.orelse:
                frames.append((id(current), arm))
        elif isinstance(current, (ast.For, ast.AsyncFor, ast.While)):
            if child in current.body:
                frames.append((id(current), "loop"))
            elif child in current.orelse:
                frames.append((id(current), "orelse"))
        elif isinstance(current, ast.ExceptHandler):
            frames.append((id(current), "except"))
        # ast.Try bodies/finalbody and ast.With bodies are transparent.
        child = current
        current = parents.get(current)
    return tuple(reversed(frames))


def _dominates(promo: _Context, write: _Context) -> bool:
    return len(promo) <= len(write) and write[: len(promo)] == promo


class AtomicAllPathsRule:
    """RL102: every temp write is dominated by its atomic promotion."""

    rule_id = "RL102"
    name = "atomic-write-all-paths"
    summary = (
        "a temp file of the atomic-write idiom must reach "
        "os.replace/os.link on every path, not only a conditional one"
    )

    def __init__(self) -> None:
        # Reuse RL004's write classifier so both rules agree on what a
        # durable write looks like.
        self._writes = NonAtomicWriteRule()

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        resolver = ModuleResolver(module.tree, module=module.module)
        parents = parent_map(module.tree)
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(scope, module, resolver, parents)

    def _check_function(
        self,
        scope: ast.FunctionDef | ast.AsyncFunctionDef,
        module: ModuleSource,
        resolver: ModuleResolver,
        parents: dict[ast.AST, ast.AST],
    ) -> Iterator[Finding]:
        writes: list[tuple[ast.Call, str]] = []
        promotions: dict[str, list[_Context]] = {}
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            if _enclosing_function(node, parents) is not scope:
                continue
            name = promoted_name(node, resolver)
            if name is not None:
                promotions.setdefault(name, []).append(
                    _branch_context(node, parents, scope)
                )
                continue
            message, target = self._writes._classify(node, resolver)
            if message is not None and target is not None:
                writes.append((node, target))
        for node, target in writes:
            contexts = promotions.get(target)
            if not contexts:
                continue  # no promotion at all: RL004's finding, not ours
            write_ctx = _branch_context(node, parents, scope)
            if any(_dominates(promo, write_ctx) for promo in contexts):
                continue
            yield finding_at(
                module.path,
                node,
                self.rule_id,
                f"temp file '{target}' is promoted by "
                "os.replace/os.rename/os.link only on a conditional "
                "path; a run through the unpromoted branch strands the "
                "temp file and leaves the durable artifact stale — "
                "promote on all paths (or clean up and fail loudly)",
            )


def _enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.AST | None:
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None
