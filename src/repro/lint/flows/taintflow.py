"""RL101 — nondeterministic values must not reach durable artifacts.

The zone-scoped per-file rules (RL001–RL003) catch nondeterminism *in*
the deterministic packages, but a value born outside them — a helper in
``repro.util``, a default computed at call time, an environment lookup
in setup code — can still flow into a checkpoint serializer, the
``history.jsonl`` stream, a ``result.json``/warm-store write, or a
``derive_seed`` input, and corrupt the bit-identical-replay contract
from a module no zone covers.

This rule runs the interprocedural taint engine over the whole scanned
set and reports every source→sink flow with the full call chain, so the
finding reads as a story::

    RL101 [error] nondeterministic value (rng) reaches checkpoint
    serializer ga_checkpoint_to_dict() via: repro.util.ids.fresh_token
    (src/.../ids.py:12): random.random() draws ... -> ... -> passes it
    to checkpoint serializer ga_checkpoint_to_dict()

Findings anchor at the call site where the tainted value meets the
sink-reaching call, which is where the fix goes.
"""

from __future__ import annotations

from typing import Iterator

from ..callgraph import ProjectIndex
from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..taint import TaintEngine


class TaintFlowRule:
    """RL101: no nondeterminism source flows into a durable sink."""

    rule_id = "RL101"
    name = "nondet-reaches-durable"
    summary = (
        "interprocedural: unseeded RNG / wall clock / environment / "
        "set- and pool-order values must not reach checkpoint "
        "serializers, registry writes, or seed derivation"
    )

    def check_project(
        self, modules: list[ModuleSource]
    ) -> Iterator[Finding]:
        index = ProjectIndex.build(modules)
        engine = TaintEngine(index)
        for flow in engine.run():
            hops = max(len(flow.trace) - 1, 0)
            chain = " -> ".join(flow.trace)
            base = finding_at(
                flow.path,
                flow.node,
                self.rule_id,
                f"nondeterministic value ({flow.source.kind}: "
                f"{flow.source.description}) reaches {flow.sink} "
                f"through {hops} call hop(s) via: {chain}",
            )
            yield Finding(
                path=base.path,
                line=base.line,
                col=base.col,
                rule_id=base.rule_id,
                message=base.message,
                end_line=base.end_line,
                trace=flow.trace,
            )
