"""Deep (whole-program) flow rules — ``repro lint --deep``.

The per-file rules in :mod:`repro.lint.rules` prove syntactic
invariants; the rules here prove the *flow* invariants behind them, on
top of the project call graph (:mod:`repro.lint.callgraph`) and the
interprocedural taint engine (:mod:`repro.lint.taint`):

=======  ==========================  ====================================
rule id  name                        invariant
=======  ==========================  ====================================
RL101    nondet-reaches-durable      no nondeterministic value reaches a
                                     checkpoint serializer, registry
                                     write, or seed derivation — across
                                     any number of calls
RL102    atomic-write-all-paths      a temp file written for the atomic
                                     idiom reaches os.replace/os.link on
                                     every path, not just some branch
RL103    pool-shared-mutable-state   pool task functions never mutate
                                     module-level state (lost on fork,
                                     divergent across workers)
RL104    write-outside-lease         per-cell durable writes in the
                                     distributed layer happen only under
                                     a claimed lease
RL105    unordered-set-iteration     sets are iterated via sorted(...)
                                     in order-sensitive zones
=======  ==========================  ====================================

``RL102``/``RL104``/``RL105`` are file rules scoped by the zone policy;
``RL101``/``RL103`` are project rules over the whole scanned set. All
five register only when the engine runs in deep mode.
"""

from __future__ import annotations

from .atomic import AtomicAllPathsRule
from .concurrency import PoolSharedStateRule
from .leases import LeaseRegionRule
from .ordering import SetIterationRule
from .taintflow import TaintFlowRule

DEEP_RULES = (
    AtomicAllPathsRule(),
    LeaseRegionRule(),
    SetIterationRule(),
)

DEEP_PROJECT_RULES = (
    TaintFlowRule(),
    PoolSharedStateRule(),
)

__all__ = [
    "DEEP_PROJECT_RULES",
    "DEEP_RULES",
    "AtomicAllPathsRule",
    "LeaseRegionRule",
    "PoolSharedStateRule",
    "SetIterationRule",
    "TaintFlowRule",
]
