"""RL104 — per-cell durable writes happen only under a claimed lease.

The distributed protocol's exclusion story: a worker may write into a
cell's run directory only between a successful
``try_acquire_lease(...)`` and the matching ``release_lease(...)``
(in practice: inside the ``with Heartbeat(lease, ...)`` block, or in a
helper that receives the claimed lease). A cell write outside that
region races whichever worker currently holds the cell — exactly the
corruption the lease file exists to prevent.

The rule applies to ``repro.distrib`` (the lease *implementation*,
``repro.distrib.lease``, is exempt — it writes the lease files
themselves). A call to a per-cell durable write method
(``log_history``/``save_checkpoint``/``finish``/``record_error``/
``truncate_history``) is compliant when either

* an enclosing ``with`` manages a ``Heartbeat(...)`` / ``*lease*``
  context, or
* the enclosing function receives the claim as a parameter named
  ``lease`` (the convention the worker helpers follow).

Campaign-scope artifacts (the coordinator's manifest) are not per-cell
and are deliberately out of scope — they are written before any worker
holds anything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..names import attr_chain, parent_map

#: Durable write methods that target one cell's run directory.
CELL_WRITE_METHODS = frozenset(
    {
        "log_history",
        "save_checkpoint",
        "finish",
        "record_error",
        "truncate_history",
        "save_warm_summaries",
    }
)

#: The lease implementation itself is exempt.
_EXEMPT_MODULES = frozenset({"repro.distrib.lease"})


def _lease_context(with_node: ast.With | ast.AsyncWith) -> bool:
    for item in with_node.items:
        chain = attr_chain(
            item.context_expr.func
            if isinstance(item.context_expr, ast.Call)
            else item.context_expr
        )
        if chain is None:
            continue
        tail = chain.split(".")[-1].lower()
        if "heartbeat" in tail or "lease" in tail:
            return True
    return False


def _has_lease_param(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    args = func.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    return any("lease" in name.lower() for name in names)


class LeaseRegionRule:
    """RL104: cell writes in the distributed layer hold the lease."""

    rule_id = "RL104"
    name = "write-outside-lease"
    summary = (
        "per-cell durable writes in repro.distrib must run under a "
        "claimed lease (with Heartbeat(...) or a lease parameter)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.module in _EXEMPT_MODULES:
            return
        parents = parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CELL_WRITE_METHODS
            ):
                continue
            if self._protected(node, parents):
                continue
            yield finding_at(
                module.path,
                node,
                self.rule_id,
                f"per-cell durable write .{node.func.attr}() outside a "
                "claimed-lease region; another worker may hold this "
                "cell — perform cell writes inside `with "
                "Heartbeat(lease, ...)` or in a helper that receives "
                "the claimed lease",
            )

    def _protected(
        self, node: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.With, ast.AsyncWith)):
                if _lease_context(current):
                    return True
            elif isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return _has_lease_param(current)
            current = parents.get(current)
        return False
