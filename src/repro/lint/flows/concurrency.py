"""RL103 — pool task functions must not mutate module-level state.

``ProcessPoolBackend`` ships work to forked/spawned workers; any
module-level mutable state a task function touches exists once *per
process*. A mutation made in a worker is invisible to the parent and to
every other worker, and whether two tasks share it depends on the
start method and chunk placement — the classic source of
"works serially, diverges under the pool" bugs.

The rule builds the set of *pool entry* functions — everything passed
to ``submit``/``map``/``imap``/``starmap`` on an executor/pool object —
then walks the project call graph from them and reports every reachable
function that mutates module-level state:

* rebinding through a ``global`` declaration,
* mutating calls (``append``/``update``/``add``/…) on a module-level
  name,
* subscript/attribute stores into a module-level name.

Functions passed as ``initializer=`` to the executor are exempt (with
everything reachable *only* through them): per-worker initialization of
module globals is exactly what the initializer hook is for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..callgraph import CallResolver, FunctionInfo, ProjectIndex
from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..names import attr_chain

#: Pool/executor methods whose first argument is shipped to workers.
_SUBMIT_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "starmap", "apply_async"}
)

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "appendleft",
        "extendleft",
    }
)


def _module_level_names(module: ModuleSource) -> frozenset[str]:
    names: set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
    return frozenset(names)


def _local_bindings(func: FunctionInfo) -> frozenset[str]:
    """Names bound locally in a function (sans ``global`` declarations)."""
    node = func.node
    hoisted: set[str] = set()
    bound: set[str] = set()
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for inner in ast.walk(node):
        if isinstance(inner, ast.Global):
            hoisted.update(inner.names)
        elif isinstance(inner, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                inner.targets
                if isinstance(inner, ast.Assign)
                else [inner.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(inner, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(inner.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(inner, ast.withitem):
            if isinstance(inner.optional_vars, ast.Name):
                bound.add(inner.optional_vars.id)
        elif isinstance(inner, ast.comprehension):
            for name_node in ast.walk(inner.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
    return frozenset(bound - hoisted)


def _global_mutations(
    func: FunctionInfo, module_names: frozenset[str]
) -> Iterator[tuple[ast.AST, str]]:
    """(node, description) for each module-state mutation in ``func``."""
    declared_global: set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    locals_ = _local_bindings(func)

    def is_module_name(name: str) -> bool:
        return name in module_names and name not in locals_

    for node in ast.walk(func.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and (
                    target.id in declared_global
                ):
                    yield node, f"rebinds global '{target.id}'"
                elif isinstance(
                    target, (ast.Subscript, ast.Attribute)
                ) and isinstance(target.value, ast.Name):
                    name = target.value.id
                    if is_module_name(name) or name in declared_global:
                        yield node, f"stores into module-level '{name}'"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            name = node.func.value.id
            if is_module_name(name) or name in declared_global:
                yield node, (
                    f"mutates module-level '{name}' via "
                    f".{node.func.attr}()"
                )


class PoolSharedStateRule:
    """RL103: no module-level mutable state behind pool task functions."""

    rule_id = "RL103"
    name = "pool-shared-mutable-state"
    summary = (
        "functions shipped to pool workers (and their callees) must "
        "not mutate module-level state; use the initializer= hook"
    )

    def check_project(
        self, modules: list[ModuleSource]
    ) -> Iterator[Finding]:
        index = ProjectIndex.build(modules)
        resolvers: dict[str, CallResolver] = {}

        def resolver_for(func: FunctionInfo) -> CallResolver:
            if func.qualname not in resolvers:
                resolvers[func.qualname] = CallResolver(index, func)
            return resolvers[func.qualname]

        entries: dict[str, str] = {}  # qualname -> submit-site location
        initializers: set[str] = set()
        for func in index.functions.values():
            resolver = resolver_for(func)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        target = resolver.resolve_reference(
                            keyword.value, at=node
                        )
                        if target is not None:
                            initializers.add(target.qualname)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SUBMIT_METHODS
                    and node.args
                ):
                    target = resolver.resolve_reference(
                        node.args[0], at=node
                    )
                    if target is not None:
                        entries.setdefault(
                            target.qualname,
                            f"{func.module.path}:{node.lineno}",
                        )

        # Reachability from entries, skipping initializer-only paths.
        reachable: dict[str, tuple[str, str]] = {}  # qual -> (entry, via)
        queue = [
            (qual, qual, site)
            for qual, site in sorted(entries.items())
            if qual not in initializers
        ]
        while queue:
            qual, entry, site = queue.pop(0)
            if qual in reachable:
                continue
            reachable[qual] = (entry, site)
            func = index.functions[qual]
            resolver = resolver_for(func)
            for node in ast.walk(func.node):
                if isinstance(node, ast.Call):
                    callee = resolver.resolve(node)
                    if (
                        callee is not None
                        and callee.qualname not in reachable
                        and callee.qualname not in initializers
                    ):
                        queue.append((callee.qualname, entry, site))

        module_names = {
            name: _module_level_names(module)
            for name, module in index.modules.items()
        }
        for qual in sorted(reachable):
            func = index.functions[qual]
            entry, site = reachable[qual]
            for node, what in _global_mutations(
                func, module_names[func.module.module]
            ):
                via = (
                    "a pool task function"
                    if qual == entry
                    else f"reached from pool task {entry}()"
                )
                yield finding_at(
                    func.module.path,
                    node,
                    self.rule_id,
                    f"{func.qualname}() {what} but runs in pool worker "
                    f"processes ({via}; submitted at {site}); "
                    "worker-side mutations are per-process and "
                    "diverge across workers — thread state through "
                    "arguments/returns or initialize it via the "
                    "executor's initializer= hook",
                )
