"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is what code hosts
ingest to render findings as inline annotations on pull requests. The
emitter maps each :class:`Finding` to one ``result`` with a physical
location, registers every rule (shipped per-file, project, and deep
rules) as a ``reportingDescriptor`` so rule metadata travels with the
log, and carries flow traces as ``codeFlows`` — the standard encoding
viewers use to render a source→sink walk step by step.

URIs are emitted relative to the repository root when findings live
under the current working directory, which is what the GitHub
annotation pipeline expects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .engine import LintReport

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _all_rules() -> list:
    from .flows import DEEP_PROJECT_RULES, DEEP_RULES
    from .rules import ALL_RULES

    return [*ALL_RULES, *DEEP_RULES, *DEEP_PROJECT_RULES]


def _relative_uri(path: str, root: Path) -> str:
    candidate = Path(path)
    try:
        return candidate.resolve().relative_to(root).as_posix()
    except (ValueError, OSError):
        return candidate.as_posix()


def _location(uri: str, line: int, col: int, end_line: int) -> dict[str, Any]:
    region: dict[str, Any] = {"startLine": line, "startColumn": col}
    if end_line > line:
        region["endLine"] = end_line
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri, "uriBaseId": "SRCROOT"},
            "region": region,
        }
    }


def _code_flow(trace: tuple[str, ...], location: dict[str, Any]) -> dict:
    # Each hop string is "qualname (file:line): what happened"; viewers
    # only need the message — the anchoring location carries the sink.
    return {
        "threadFlows": [
            {
                "locations": [
                    {
                        "location": {
                            **location,
                            "message": {"text": step},
                        }
                    }
                    for step in trace
                ]
            }
        ]
    }


def report_to_sarif(
    report: LintReport, root: Path | None = None
) -> dict[str, Any]:
    """The SARIF 2.1.0 document for one lint run, as a plain dict."""
    root = (root or Path.cwd()).resolve()
    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in _all_rules()
    ]
    results = []
    for finding in report.findings:
        uri = _relative_uri(finding.path, root)
        location = _location(
            uri, finding.line, finding.col, finding.end_line
        )
        result: dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [location],
        }
        if finding.trace:
            result["codeFlows"] = [_code_flow(finding.trace, location)]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": root.as_uri() + "/"}
                },
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport, root: Path | None = None) -> str:
    return json.dumps(report_to_sarif(report, root=root), indent=2)
