"""``repro.lint`` — AST static analysis for the reproduction's invariants.

Everything the registry/distrib/budget stack promises (bit-identical
parallel and resumed runs, crash-safe durable artifacts, path-independent
budget allocation) rests on code-level invariants: seeded RNG only, no
wall-clock reads on deterministic paths, sorted directory scans, atomic
durable writes, and checkpoint dataclasses that fully round-trip through
the serializer. This package machine-checks them:

=======  ============================  =======================================
rule id  name                          invariant
=======  ============================  =======================================
RL001    unseeded-rng                  all randomness from seeded generators
RL002    wall-clock                    injectable clocks, never time.time()
RL003    unsorted-fs-scan              directory scans wrapped in sorted()
RL004    non-atomic-durable-write      _write_atomic or append-only streams
RL005    checkpoint-field-completeness checkpoint fields survive round trips
=======  ============================  =======================================

Deep mode (``repro lint --deep``) layers whole-program analysis on
top: a project call graph (:mod:`repro.lint.callgraph`), an
interprocedural taint engine (:mod:`repro.lint.taint`), and the flow
rules RL101–RL105 (:mod:`repro.lint.flows`) — nondeterminism
source→durable sink tracking with full call-chain traces, all-paths
atomic-write verification, pool-shared-state and lease-region checks,
and sorted-set-iteration enforcement.

Scoping is by *zone* (:mod:`repro.lint.zones`); per-line escapes use
``# repro-lint: allow[RLxxx] -- justification`` pragmas
(:mod:`repro.lint.pragmas`). The ``repro lint`` CLI subcommand exposes
text/JSON/SARIF output with CI-friendly exit codes (0 clean, 1
findings).
"""

from .callgraph import CallResolver, FunctionInfo, ProjectIndex
from .engine import (
    Linter,
    LintReport,
    ModuleSource,
    ProjectRule,
    Rule,
    module_name_for,
)
from .findings import Finding, finding_at
from .flows import DEEP_PROJECT_RULES, DEEP_RULES
from .pragmas import Pragma, collect_pragmas
from .rules import ALL_RULES, DEFAULT_PROJECT_RULES, DEFAULT_RULES
from .taint import TaintEngine
from .zones import DEFAULT_POLICY, DEFAULT_ZONES, Zone, ZonePolicy

__all__ = [
    "ALL_RULES",
    "CallResolver",
    "DEEP_PROJECT_RULES",
    "DEEP_RULES",
    "FunctionInfo",
    "ProjectIndex",
    "TaintEngine",
    "DEFAULT_POLICY",
    "DEFAULT_PROJECT_RULES",
    "DEFAULT_RULES",
    "DEFAULT_ZONES",
    "Finding",
    "LintReport",
    "Linter",
    "ModuleSource",
    "Pragma",
    "ProjectRule",
    "Rule",
    "Zone",
    "ZonePolicy",
    "collect_pragmas",
    "finding_at",
    "module_name_for",
]
