"""Qualified-name resolution for AST call sites.

The rules match calls against fully-qualified names (``time.time``,
``numpy.random.randint``) regardless of how the module was imported —
``import time``, ``from time import time``, ``import numpy as np`` all
resolve to the same canonical chain. Resolution is import-anchored: a
dotted chain whose first segment is not an import binding resolves to
``None``, so a local variable that happens to be called ``random``
never false-positives a module-level-RNG rule (method-name heuristics,
where a rule wants them, are the rule's own choice).
"""

from __future__ import annotations

import ast


def attr_chain(node: ast.AST) -> str | None:
    """Dotted source chain of a Name/Attribute expression, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local import bindings of one module: alias -> qualified path."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports.aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds only ``numpy``.
                        root = alias.name.split(".", 1)[0]
                        imports.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    qualified = f"{base}.{alias.name}" if base else alias.name
                    imports.aliases[bound] = qualified
        return imports

    def resolve(self, chain: str | None) -> str | None:
        """Canonical form of a dotted chain, or None when unanchored."""
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target


def call_qualname(call: ast.Call, imports: ImportMap) -> str | None:
    """Canonical qualified name of a call's target, or None."""
    return imports.resolve(attr_chain(call.func))


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent mapping for one module tree."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents
