"""Qualified-name resolution for AST call sites.

The rules match calls against fully-qualified names (``time.time``,
``numpy.random.randint``) regardless of how the module was imported —
``import time``, ``from time import time``, ``import numpy as np`` all
resolve to the same canonical chain. Resolution is import-anchored: a
dotted chain whose first segment is not an import binding resolves to
``None``, so a local variable that happens to be called ``random``
never false-positives a module-level-RNG rule (method-name heuristics,
where a rule wants them, are the rule's own choice).

Two refinements serve the whole-program mode:

* :func:`absolutize` canonicalizes relative imports (``from ..runs
  import seeds``) against the importing module's dotted name, so the
  call graph can match them to project modules;
* :class:`ModuleResolver` is scope-aware — a function parameter that
  shadows an import binding (``def f(random): random.shuffle(x)``)
  un-anchors the chain instead of resolving to the stdlib module.
"""

from __future__ import annotations

import ast


def attr_chain(node: ast.AST) -> str | None:
    """Dotted source chain of a Name/Attribute expression, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local import bindings of one module: alias -> qualified path."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports.aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds only ``numpy``.
                        root = alias.name.split(".", 1)[0]
                        imports.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    qualified = f"{base}.{alias.name}" if base else alias.name
                    imports.aliases[bound] = qualified
        return imports

    def resolve(self, chain: str | None) -> str | None:
        """Canonical form of a dotted chain, or None when unanchored."""
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target


def call_qualname(call: ast.Call, imports: ImportMap) -> str | None:
    """Canonical qualified name of a call's target, or None."""
    return imports.resolve(attr_chain(call.func))


def absolutize(
    qualified: str | None, module: str, is_package: bool = False
) -> str | None:
    """Resolve a leading-dots qualified name against its module.

    ``ImportMap`` stores relative imports with their dots intact
    (``..runs.seeds.derive_seed``); given the importing module's dotted
    name this rewrites them absolute (``repro.runs.seeds.derive_seed``).
    ``is_package`` marks ``__init__.py`` modules, whose own name *is*
    the package a single leading dot refers to. Absolute names pass
    through unchanged; an import that climbs past the package root
    resolves to ``None``.
    """
    if qualified is None or not qualified.startswith("."):
        return qualified
    level = len(qualified) - len(qualified.lstrip("."))
    rest = qualified[level:]
    parts = module.split(".") if module else []
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        if level - 1 > len(parts):
            return None
        parts = parts[: len(parts) - (level - 1)]
    if not parts:
        return rest or None
    base = ".".join(parts)
    return f"{base}.{rest}" if rest else base


def _function_bindings(node: ast.AST) -> frozenset[str]:
    """Names a function/lambda node binds as parameters."""
    args = node.args
    names = {
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return frozenset(names)


def shadow_map(tree: ast.AST) -> dict[ast.AST, frozenset[str]]:
    """Per-node set of names shadowed by enclosing function parameters.

    Only parameter bindings are tracked — they are the shadowing source
    the rules actually meet (``def sample(random): ...``); full local
    dataflow is the taint engine's job, not name resolution's.
    """
    shadows: dict[ast.AST, frozenset[str]] = {}
    stack: list[tuple[ast.AST, frozenset[str]]] = [(tree, frozenset())]
    while stack:
        node, active = stack.pop()
        shadows[node] = active
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            active = active | _function_bindings(node)
        for child in ast.iter_child_nodes(node):
            stack.append((child, active))
    return shadows


class ModuleResolver:
    """Scope-aware qualified-name resolution for one module.

    Combines the module's :class:`ImportMap` with parameter-shadowing
    information and relative-import canonicalization, so a single call
    answers "what fully-qualified thing does this call target" for both
    the per-file rules and the whole-program call graph.
    """

    def __init__(
        self, tree: ast.AST, module: str = "", is_package: bool = False
    ) -> None:
        self.module = module
        self.is_package = is_package
        self.imports = ImportMap.from_tree(tree)
        self._shadows = shadow_map(tree)

    def shadowed(self, node: ast.AST) -> frozenset[str]:
        return self._shadows.get(node, frozenset())

    def resolve_chain(self, chain: str | None, at: ast.AST) -> str | None:
        """Canonical absolute name of a dotted chain at a node, or None."""
        if chain is None:
            return None
        head = chain.partition(".")[0]
        if head in self._shadows.get(at, frozenset()):
            return None
        return absolutize(
            self.imports.resolve(chain), self.module, self.is_package
        )

    def qualname(self, call: ast.Call) -> str | None:
        """Canonical absolute name of a call's target, or None."""
        return self.resolve_chain(attr_chain(call.func), call)


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent mapping for one module tree."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents
