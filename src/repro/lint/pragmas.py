"""``# repro-lint: allow[...]`` pragma parsing and bookkeeping.

A pragma suppresses specific rules on specific lines::

    marker.write_text(text)  # repro-lint: allow[RL004] -- crash marker

* the bracket list names one or more rule ids (comma-separated);
* everything after ``--`` is the mandatory justification — a pragma
  without one is itself reported (``RL000 undocumented pragma``), so
  the suppression baseline stays reviewable;
* an inline pragma governs its own physical line (and, via
  ``Finding.end_line``, any multi-line statement that *starts* earlier
  but ends on it); a pragma on a comment-only line governs the next
  line that holds code.

Pragmas that suppress nothing are reported too (``RL000 unused
pragma``): a stale allow is a hole in the checker.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rules>[^\]]+)\]\s*(?:--\s*(?P<reason>\S.*))?"
)

#: Token types that mean "this line holds actual code".
_NON_CODE_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


@dataclass
class Pragma:
    """One parsed ``allow`` pragma."""

    #: Physical line the comment sits on.
    line: int
    #: Line the suppression applies to (== ``line`` for inline pragmas,
    #: the next code line for standalone comment lines).
    target: int
    rules: frozenset[str]
    reason: str
    #: Rule ids that actually matched a finding — filled by the engine.
    used: set[str] = field(default_factory=set)

    @property
    def documented(self) -> bool:
        return bool(self.reason)


def _parse_comment(text: str, line: int) -> Pragma | None:
    match = _PRAGMA_RE.search(text)
    if match is None:
        return None
    rules = frozenset(
        part.strip() for part in match.group("rules").split(",") if part.strip()
    )
    if not rules:
        return None
    reason = (match.group("reason") or "").strip()
    return Pragma(line=line, target=line, rules=rules, reason=reason)


def collect_pragmas(source: str) -> list[Pragma]:
    """Extract every pragma from a module's source text.

    Tokenize-based, so pragma-shaped text inside string literals is not
    mistaken for a pragma. Falls back to a line scan when the module
    does not tokenize (the engine reports the parse failure separately).
    """
    pragmas: list[Pragma] = []
    code_lines: set[int] = set()
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for number, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                pragma = _parse_comment(text[text.index("#"):], number)
                if pragma is not None:
                    pragmas.append(pragma)
            if text.split("#", 1)[0].strip():
                code_lines.add(number)
    else:
        for token in tokens:
            if token.type == tokenize.COMMENT:
                pragma = _parse_comment(token.string, token.start[0])
                if pragma is not None:
                    pragmas.append(pragma)
            elif token.type not in _NON_CODE_TOKENS:
                for number in range(token.start[0], token.end[0] + 1):
                    code_lines.add(number)
    for pragma in pragmas:
        if pragma.line not in code_lines:
            later = [n for n in code_lines if n > pragma.line]
            if later:
                pragma.target = min(later)
    return pragmas
