"""The finding record every lint rule emits.

A :class:`Finding` pins one invariant violation to a ``file:line:col``
location with the rule id that produced it, so the CLI can render it as
a compiler-style diagnostic, the JSON emitter can feed automation, and
the pragma layer can match it against ``# repro-lint: allow[...]``
suppressions on the same source line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Rule id of the linter's own housekeeping findings (parse failures,
#: undocumented or unused pragmas) — never suppressible by pragma.
META_RULE_ID = "RL000"


@dataclass(frozen=True)
class Finding:
    """One invariant violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"
    #: Last physical line of the offending node — pragma suppression
    #: accepts a pragma anywhere in ``[line, end_line]`` so a trailing
    #: comment on a multi-line call still covers it.
    end_line: int = field(default=0)
    #: Source→sink call-chain steps for flow findings (deep mode): each
    #: entry is one hop, ``"qualname (file:line): what happened"``.
    trace: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self, with_trace: bool = False) -> str:
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )
        if not (with_trace and self.trace):
            return head
        steps = "\n".join(
            f"    {i}. {step}" for i, step in enumerate(self.trace, start=1)
        )
        return f"{head}\n{steps}"

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }
        if self.trace:
            data["trace"] = list(self.trace)
        return data


def finding_at(
    path: str | Path, node: ast.AST, rule_id: str, message: str
) -> Finding:
    """Build a :class:`Finding` anchored at an AST node's location."""
    return Finding(
        path=str(path),
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule_id=rule_id,
        message=message,
        end_line=getattr(node, "end_lineno", None) or getattr(node, "lineno", 1),
    )
