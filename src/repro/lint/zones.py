"""Zone policy: which rules apply to which module trees.

The reproduction's invariants are not uniform across the codebase — the
*deterministic* zone (search, pricing, execution-model, and campaign
code whose outputs must be bit-identical across runs, processes, and
machines) forbids unseeded RNG, wall-clock reads, and order-dependent
filesystem scans, while the *durable* zone (the run registry and the
distributed layer, whose on-disk artifacts other processes trust)
additionally forbids non-atomic writes. Presentation code (``viz``,
``cli``, ``experiments`` timing banners) is deliberately outside both.

A :class:`Zone` maps module-tree prefixes to the rule ids active under
them; a :class:`ZonePolicy` is the ordered collection the engine
consults per module. Policies are plain data — tests build narrow ones,
and :data:`DEFAULT_POLICY` encodes the project's actual contract.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Zone:
    """One named region of the module tree and its active rules."""

    name: str
    #: Dotted module prefixes; a module is in the zone when it equals a
    #: prefix or lives under it (``repro.ga`` covers ``repro.ga.engine``).
    prefixes: tuple[str, ...]
    rules: tuple[str, ...]

    def covers(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.prefixes
        )


#: Module trees whose outputs must be bit-identical for a fixed seed:
#: the genetic/annealing/NSGA search stack, the design-space explorers,
#: the durable run/suite layer, the distributed protocol, and the cost
#: and execution models they price genomes with.
DETERMINISTIC_PACKAGES = (
    "repro.ga",
    "repro.dse",
    "repro.runs",
    "repro.distrib",
    "repro.cost",
    "repro.execution",
)

#: Module trees that write registry artifacts other processes trust.
DURABLE_PACKAGES = (
    "repro.runs",
    "repro.distrib",
)

#: Module trees where *iteration order* leaks into results: everything
#: deterministic, plus the graph/partition models feeding it and the
#: parallel backend that fans evaluation out.
ORDER_SENSITIVE_PACKAGES = DETERMINISTIC_PACKAGES + (
    "repro.graphs",
    "repro.partition",
    "repro.parallel",
)

#: Deep-only rule ids live in the same zone table as the per-file ones;
#: they simply match no registered rule unless the engine runs with
#: ``deep=True``, so the policy stays a single source of truth.
DEFAULT_ZONES = (
    Zone(
        name="deterministic",
        prefixes=DETERMINISTIC_PACKAGES,
        rules=("RL001", "RL002", "RL003"),
    ),
    Zone(
        name="durable",
        prefixes=DURABLE_PACKAGES,
        rules=("RL004", "RL102"),
    ),
    Zone(
        name="lease-protocol",
        prefixes=("repro.distrib",),
        rules=("RL104",),
    ),
    Zone(
        name="order-sensitive",
        prefixes=ORDER_SENSITIVE_PACKAGES,
        rules=("RL105",),
    ),
    # Telemetry emission and aggregation: a write-only side channel of
    # the deterministic zone. Events may *carry* wall-clock timestamps,
    # but only through the injectable clock idiom (``clock: Clock =
    # time.time`` parameters) — a resolved ``time.time()`` call inside
    # the tree would smuggle nondeterminism past the sink's contract,
    # so the clock and RNG rules apply here exactly as in the search
    # stack.
    Zone(
        name="observability",
        prefixes=("repro.obs",),
        rules=("RL001", "RL002", "RL003"),
    ),
)


class ZonePolicy:
    """Maps a module name to the set of rule ids active for it."""

    def __init__(self, zones: tuple[Zone, ...] = DEFAULT_ZONES):
        self.zones = tuple(zones)

    def rules_for(self, module: str) -> frozenset[str]:
        active: set[str] = set()
        for zone in self.zones:
            if zone.covers(module):
                active.update(zone.rules)
        return frozenset(active)

    def zones_for(self, module: str) -> tuple[str, ...]:
        return tuple(z.name for z in self.zones if z.covers(module))


DEFAULT_POLICY = ZonePolicy()
