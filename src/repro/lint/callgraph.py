"""Project-wide call graph over the scanned module set.

The deep pass needs to answer one question precisely: *which project
function does this call site invoke?* Resolution is anchored on the
same import machinery the per-file rules use (:mod:`repro.lint.names`),
extended across files:

* bare names resolve to nested/enclosing defs, then module-level defs,
  then imported project functions (relative imports canonicalized);
* ``self.m()`` / ``cls.m()`` resolve through the enclosing class and
  its project-local bases (declaration-order MRO walk);
* ``obj.m()`` resolves when ``obj``'s class is knowable through the
  common dataclass/config idiom — an annotated parameter, an annotated
  class attribute (dataclass field), a ``self.x = ClassName(...)``
  constructor assignment, or a local ``x = ClassName(...)``;
* everything else resolves to ``None`` — the analysis under-approximates
  edges rather than guessing, so findings stay provable.

The index also records, per class, its attribute type table; the taint
engine shares it for the same receiver-type questions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .engine import ModuleSource
from .names import ModuleResolver, attr_chain

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class FunctionInfo:
    """One function or method definition in the scanned tree."""

    qualname: str
    module: ModuleSource
    node: FunctionNode
    #: Qualname of the enclosing class for methods, else None.
    owner: str | None = None

    @property
    def location(self) -> str:
        return f"{self.module.path}:{self.node.lineno}"

    def param_names(self) -> list[str]:
        args = self.node.args
        return [a.arg for a in (*args.posonlyargs, *args.args)]


@dataclass
class ClassInfo:
    """One class definition: methods, bases, and attribute types."""

    qualname: str
    module: ModuleSource
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> class qualname, from dataclass-field/``__init__``
    #: annotations and ``self.x = ClassName(...)`` constructor assignments.
    attr_types: dict[str, str] = field(default_factory=dict)


def _annotation_chain(node: ast.expr | None) -> str | None:
    """Dotted chain named by an annotation, unwrapping the common forms.

    Handles string annotations, ``T | None`` unions, and
    ``Optional[T]`` — the shapes the config/dataclass idiom actually
    uses. Anything fancier resolves to None.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_chain(node.left)
        if left is not None:
            return left
        return _annotation_chain(node.right)
    if isinstance(node, ast.Subscript):
        base = attr_chain(node.value)
        if base is not None and base.split(".")[-1] == "Optional":
            return _annotation_chain(node.slice)
        return None
    return attr_chain(node)


class ProjectIndex:
    """Functions, classes, and resolvers of the whole scanned tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleSource] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.resolvers: dict[str, ModuleResolver] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, modules: list[ModuleSource]) -> "ProjectIndex":
        index = cls()
        for module in modules:
            index.modules[module.module] = module
            index.resolvers[module.module] = ModuleResolver(
                module.tree,
                module=module.module,
                is_package=module.path.name == "__init__.py",
            )
        for module in modules:
            index._index_module(module)
        for info in index.classes.values():
            index._infer_attr_types(info)
        return index

    def _index_module(self, module: ModuleSource) -> None:
        resolver = self.resolvers[module.module]

        def walk(body: list[ast.stmt], prefix: str, owner: str | None) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{node.name}"
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        module=module,
                        node=node,
                        owner=owner,
                    )
                    walk(node.body, qualname, None)
                elif isinstance(node, ast.ClassDef):
                    qualname = f"{prefix}.{node.name}"
                    bases = []
                    for base in node.bases:
                        resolved = resolver.resolve_chain(
                            attr_chain(base), base
                        ) or self._same_module_class(module, base)
                        if resolved is not None:
                            bases.append(resolved)
                    info = ClassInfo(
                        qualname=qualname,
                        module=module,
                        node=node,
                        bases=tuple(bases),
                    )
                    self.classes[qualname] = info
                    for stmt in node.body:
                        if isinstance(
                            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            method = FunctionInfo(
                                qualname=f"{qualname}.{stmt.name}",
                                module=module,
                                node=stmt,
                                owner=qualname,
                            )
                            info.methods[stmt.name] = method
                            self.functions[method.qualname] = method
                            walk(stmt.body, method.qualname, None)

        walk(module.tree.body, module.module, None)

    def _same_module_class(
        self, module: ModuleSource, node: ast.expr
    ) -> str | None:
        if isinstance(node, ast.Name):
            candidate = f"{module.module}.{node.id}"
            for other in module.tree.body:
                if isinstance(other, ast.ClassDef) and other.name == node.id:
                    return candidate
        return None

    def _infer_attr_types(self, info: ClassInfo) -> None:
        """Fill a class's attribute type table (dataclass/config idiom)."""
        resolver = self.resolvers[info.module.module]
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                target_cls = self.resolve_class_chain(
                    _annotation_chain(stmt.annotation), resolver, stmt
                )
                if target_cls is not None:
                    info.attr_types[stmt.target.id] = target_cls
        init = info.methods.get("__init__")
        if init is None:
            return
        for node in ast.walk(init.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
                annotated = self.resolve_class_chain(
                    _annotation_chain(node.annotation), resolver, node
                )
                if (
                    annotated is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.attr_types.setdefault(target.attr, annotated)
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Call)
            ):
                constructed = self.resolve_class_chain(
                    attr_chain(value.func), resolver, value
                )
                if constructed is not None:
                    info.attr_types.setdefault(target.attr, constructed)

    # -- lookups --------------------------------------------------------
    def resolve_class_chain(
        self,
        chain: str | None,
        resolver: ModuleResolver,
        at: ast.AST,
    ) -> str | None:
        """Project-class qualname named by a chain at a node, or None."""
        if chain is None:
            return None
        resolved = resolver.resolve_chain(chain, at)
        if resolved is not None and resolved in self.classes:
            return resolved
        candidate = f"{resolver.module}.{chain}"
        if candidate in self.classes:
            return candidate
        return None

    def resolve_method(self, cls_qual: str, name: str) -> FunctionInfo | None:
        """Method lookup through a class and its project-local bases."""
        seen: set[str] = set()
        queue = [cls_qual]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            queue.extend(info.bases)
        return None


class CallResolver:
    """Resolves call sites of one function to project functions."""

    def __init__(self, index: ProjectIndex, caller: FunctionInfo) -> None:
        self.index = index
        self.caller = caller
        self.resolver = index.resolvers[caller.module.module]
        #: Local variable -> class qualname, from annotated params and
        #: ``x = ClassName(...)`` constructor assignments.
        self.local_types = self._local_types()

    def _local_types(self) -> dict[str, str]:
        types: dict[str, str] = {}
        node = self.caller.node
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            cls = self.index.resolve_class_chain(
                _annotation_chain(arg.annotation), self.resolver, node
            )
            if cls is not None:
                types[arg.arg] = cls
        for stmt in ast.walk(node):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                cls = self.index.resolve_class_chain(
                    attr_chain(stmt.value.func), self.resolver, stmt.value
                )
                if cls is not None:
                    types[stmt.targets[0].id] = cls
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                cls = self.index.resolve_class_chain(
                    _annotation_chain(stmt.annotation), self.resolver, stmt
                )
                if cls is not None:
                    types[stmt.target.id] = cls
        return types

    def _receiver_class(self, chain_head: str) -> str | None:
        if chain_head in ("self", "cls") and self.caller.owner is not None:
            return self.caller.owner
        return self.local_types.get(chain_head)

    def resolve(self, call: ast.Call) -> FunctionInfo | None:
        """The project function a call invokes, or None."""
        return self.resolve_reference(call.func, at=call)

    def resolve_reference(
        self, func_expr: ast.expr, at: ast.AST | None = None
    ) -> FunctionInfo | None:
        """The project function a name/attribute chain denotes, or None.

        Same resolution as :meth:`resolve`, but for bare references —
        the ``fn`` in ``pool.submit(fn, item)`` or an
        ``initializer=fn`` keyword.
        """
        at = at if at is not None else func_expr
        chain = attr_chain(func_expr)
        if chain is None:
            return None
        parts = chain.split(".")
        head = parts[0]
        if head in self.resolver.shadowed(at) and head not in (
            "self",
            "cls",
        ):
            # A parameter shadows the name; its class may still be known.
            if len(parts) == 2:
                cls = self.local_types.get(head)
                if cls is not None:
                    return self.index.resolve_method(cls, parts[1])
            return None
        if len(parts) == 1:
            return self._resolve_bare(head)
        receiver_cls = self._receiver_class(head)
        if receiver_cls is not None:
            # self.m() / typed_obj.m() / self.attr.m() method chains.
            for attr in parts[1:-1]:
                info = self.index.classes.get(receiver_cls)
                if info is None:
                    return None
                receiver_cls = info.attr_types.get(attr)
                if receiver_cls is None:
                    return None
            return self.index.resolve_method(receiver_cls, parts[-1])
        resolved = self.resolver.resolve_chain(chain, at)
        if resolved is None:
            return None
        if resolved in self.index.functions:
            return self.index.functions[resolved]
        # ``from x import Class`` then ``Class.method(...)``.
        cls_part, _, method = resolved.rpartition(".")
        if cls_part in self.index.classes:
            return self.index.resolve_method(cls_part, method)
        return None

    def _resolve_bare(self, name: str) -> FunctionInfo | None:
        # Nested def in the enclosing function chain, innermost out —
        # class-qualname prefixes are skipped (a bare name never means
        # an unbound method of the enclosing class).
        module_name = self.caller.module.module
        prefix = self.caller.qualname
        while prefix != module_name:
            if prefix in self.index.functions:
                candidate = f"{prefix}.{name}"
                if candidate in self.index.functions:
                    return self.index.functions[candidate]
            prefix = prefix.rpartition(".")[0]
        candidate = f"{module_name}.{name}"
        if candidate in self.index.functions:
            return self.index.functions[candidate]
        resolved = self.resolver.resolve_chain(name, self.caller.node)
        if resolved is not None and resolved in self.index.functions:
            return self.index.functions[resolved]
        return None

    def constructed_class(self, call: ast.Call) -> str | None:
        """Project class a call constructs, or None."""
        return self.index.resolve_class_chain(
            attr_chain(call.func), self.resolver, call
        )
