"""The lint engine: load modules, run rules, apply pragma suppression.

The engine is deliberately small: rules do the understanding, zones do
the scoping, pragmas do the escaping, and the engine only walks files
(in sorted order — the linter holds itself to the invariants it
checks), dispatches, and folds the results into a :class:`LintReport`.

Two rule shapes exist:

* a **file rule** (:class:`Rule`) sees one :class:`ModuleSource` at a
  time and runs only where the zone policy activates its id;
* a **project rule** (:class:`ProjectRule`) sees the whole scanned
  module set once — cross-file invariants like checkpoint-field
  completeness live here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Protocol, runtime_checkable

from .findings import META_RULE_ID, Finding
from .pragmas import Pragma, collect_pragmas
from .zones import DEFAULT_POLICY, ZonePolicy


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, by walking up the package tree.

    The package root is the nearest ancestor directory *without* an
    ``__init__.py`` — the standard src-layout convention, which maps
    ``src/repro/ga/engine.py`` to ``repro.ga.engine`` and works equally
    for fixture trees tests assemble under a temp directory.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else path.stem


@dataclass
class ModuleSource:
    """One parsed module: everything a rule needs to inspect it."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    pragmas: list[Pragma] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, module: str | None = None) -> "ModuleSource":
        source = path.read_text()
        return cls.from_source(
            source, module=module or module_name_for(path), path=path
        )

    @classmethod
    def from_source(
        cls, source: str, module: str, path: str | Path = "<fixture>"
    ) -> "ModuleSource":
        return cls(
            path=Path(path),
            module=module,
            source=source,
            tree=ast.parse(source),
            pragmas=collect_pragmas(source),
        )


@runtime_checkable
class Rule(Protocol):
    """A per-file AST rule."""

    rule_id: str
    name: str
    summary: str

    def check(self, module: ModuleSource) -> Iterator[Finding]: ...


@runtime_checkable
class ProjectRule(Protocol):
    """A whole-project rule, run once over every scanned module."""

    rule_id: str
    name: str
    summary: str

    def check_project(
        self, modules: list[ModuleSource]
    ) -> Iterator[Finding]: ...


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]
    files: int
    pragmas: int
    suppressed: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self, with_trace: bool = False) -> str:
        if self.clean:
            return (
                f"repro lint: clean — {self.files} file(s) scanned, "
                f"{self.suppressed} finding(s) suppressed by "
                f"{self.pragmas} documented pragma(s)"
            )
        lines = [f.render(with_trace=with_trace) for f in self.findings]
        lines.append(
            f"repro lint: {len(self.findings)} finding(s) in "
            f"{self.files} file(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "clean": self.clean,
            "files": self.files,
            "pragmas": self.pragmas,
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }


def _known_rule_ids() -> frozenset[str]:
    """Every rule id the linter ships, shallow and deep."""
    from .flows import DEEP_PROJECT_RULES, DEEP_RULES
    from .rules import ALL_RULES

    return frozenset(
        rule.rule_id
        for rule in (*ALL_RULES, *DEEP_RULES, *DEEP_PROJECT_RULES)
    )


def _decorator_spans(tree: ast.Module) -> dict[int, int]:
    """``def``-line → first-decorator-line for decorated definitions."""
    spans: dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and node.decorator_list:
            spans[node.lineno] = min(
                d.lineno for d in node.decorator_list
            )
    return spans


def _expand(paths: Iterable[Path]) -> list[Path]:
    """Python files under the given paths, sorted and de-duplicated."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            seen.setdefault(candidate.resolve(), None)
    return sorted(seen)


class Linter:
    """Run a rule set over a file tree under a zone policy."""

    def __init__(
        self,
        rules: Iterable[Rule] | None = None,
        project_rules: Iterable[ProjectRule] | None = None,
        policy: ZonePolicy = DEFAULT_POLICY,
        deep: bool = False,
    ):
        if rules is None or project_rules is None:
            from .rules import DEFAULT_PROJECT_RULES, DEFAULT_RULES

            rules = DEFAULT_RULES if rules is None else rules
            if project_rules is None:
                project_rules = DEFAULT_PROJECT_RULES
        self.rules = list(rules)
        self.project_rules = list(project_rules)
        self.policy = policy
        self.deep = deep
        if deep:
            from .flows import DEEP_PROJECT_RULES, DEEP_RULES

            self.rules.extend(DEEP_RULES)
            self.project_rules.extend(DEEP_PROJECT_RULES)

    def lint(self, paths: Iterable[Path | str]) -> LintReport:
        modules: list[ModuleSource] = []
        findings: list[Finding] = []
        files = 0
        for path in _expand(Path(p) for p in paths):
            files += 1
            try:
                modules.append(ModuleSource.load(path))
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        path=str(path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        rule_id=META_RULE_ID,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        for module in modules:
            active = self.policy.rules_for(module.module)
            for rule in self.rules:
                if rule.rule_id in active:
                    findings.extend(rule.check(module))
        for project_rule in self.project_rules:
            findings.extend(project_rule.check_project(modules))

        pragma_index = {str(m.path.resolve()): m.pragmas for m in modules}
        spans_index = {
            str(m.path.resolve()): _decorator_spans(m.tree) for m in modules
        }
        kept, suppressed = [], 0
        for finding in findings:
            if self._suppressed(finding, pragma_index, spans_index):
                suppressed += 1
            else:
                kept.append(finding)
        registered = frozenset(
            rule.rule_id for rule in (*self.rules, *self.project_rules)
        )
        total_pragmas = 0
        for module in modules:
            for pragma in module.pragmas:
                total_pragmas += 1
                kept.extend(
                    self._pragma_hygiene(module, pragma, registered)
                )
        kept.sort(key=lambda f: f.sort_key)
        return LintReport(
            findings=kept,
            files=files,
            pragmas=total_pragmas,
            suppressed=suppressed,
        )

    def _suppressed(
        self,
        finding: Finding,
        pragma_index: dict[str, list[Pragma]],
        spans_index: dict[str, dict[int, int]],
    ) -> bool:
        if finding.rule_id == META_RULE_ID:
            return False
        try:
            key = str(Path(finding.path).resolve())
        except OSError:
            key = finding.path
        spans = spans_index.get(key, {})
        for pragma in pragma_index.get(key, []):
            if finding.rule_id not in pragma.rules:
                continue
            if finding.line <= pragma.target <= finding.end_line:
                pragma.used.add(finding.rule_id)
                return True
            # A pragma on a decorated definition's `def` line also
            # covers findings the rules attribute to its decorator
            # lines (a decorator call is part of the definition it
            # decorates, and the `def` line is where reviewers look).
            first_decorator = spans.get(pragma.target)
            if (
                first_decorator is not None
                and first_decorator <= finding.line <= pragma.target
            ):
                pragma.used.add(finding.rule_id)
                return True
        return False

    def _pragma_hygiene(
        self, module: ModuleSource, pragma: Pragma, registered: frozenset[str]
    ) -> list[Finding]:
        rules = ",".join(sorted(pragma.rules))
        if not pragma.documented:
            return [
                Finding(
                    path=str(module.path),
                    line=pragma.line,
                    col=1,
                    rule_id=META_RULE_ID,
                    message=(
                        f"undocumented pragma allow[{rules}]: append "
                        "'-- <why this violation is safe>'"
                    ),
                )
            ]
        if not pragma.rules & registered:
            # Every id the pragma names belongs to a rule this run did
            # not register — e.g. a deep-only RL1xx pragma under the
            # shallow pass. Only the deep pass can judge it unused; an
            # id outside the full catalog is still a reportable typo.
            unknown = pragma.rules - _known_rule_ids()
            if unknown:
                return [
                    Finding(
                        path=str(module.path),
                        line=pragma.line,
                        col=1,
                        rule_id=META_RULE_ID,
                        message=(
                            "pragma names unknown rule id(s) "
                            f"{','.join(sorted(unknown))}: fix the id "
                            "or remove the pragma"
                        ),
                    )
                ]
            return []
        if not pragma.used:
            return [
                Finding(
                    path=str(module.path),
                    line=pragma.line,
                    col=1,
                    rule_id=META_RULE_ID,
                    message=(
                        f"unused pragma allow[{rules}]: it suppresses "
                        "nothing — remove it or fix the rule id"
                    ),
                )
            ]
        return []
