"""The lint engine: load modules, run rules, apply pragma suppression.

The engine is deliberately small: rules do the understanding, zones do
the scoping, pragmas do the escaping, and the engine only walks files
(in sorted order — the linter holds itself to the invariants it
checks), dispatches, and folds the results into a :class:`LintReport`.

Two rule shapes exist:

* a **file rule** (:class:`Rule`) sees one :class:`ModuleSource` at a
  time and runs only where the zone policy activates its id;
* a **project rule** (:class:`ProjectRule`) sees the whole scanned
  module set once — cross-file invariants like checkpoint-field
  completeness live here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Protocol, runtime_checkable

from .findings import META_RULE_ID, Finding
from .pragmas import Pragma, collect_pragmas
from .zones import DEFAULT_POLICY, ZonePolicy


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, by walking up the package tree.

    The package root is the nearest ancestor directory *without* an
    ``__init__.py`` — the standard src-layout convention, which maps
    ``src/repro/ga/engine.py`` to ``repro.ga.engine`` and works equally
    for fixture trees tests assemble under a temp directory.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else path.stem


@dataclass
class ModuleSource:
    """One parsed module: everything a rule needs to inspect it."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    pragmas: list[Pragma] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, module: str | None = None) -> "ModuleSource":
        source = path.read_text()
        return cls.from_source(
            source, module=module or module_name_for(path), path=path
        )

    @classmethod
    def from_source(
        cls, source: str, module: str, path: str | Path = "<fixture>"
    ) -> "ModuleSource":
        return cls(
            path=Path(path),
            module=module,
            source=source,
            tree=ast.parse(source),
            pragmas=collect_pragmas(source),
        )


@runtime_checkable
class Rule(Protocol):
    """A per-file AST rule."""

    rule_id: str
    name: str
    summary: str

    def check(self, module: ModuleSource) -> Iterator[Finding]: ...


@runtime_checkable
class ProjectRule(Protocol):
    """A whole-project rule, run once over every scanned module."""

    rule_id: str
    name: str
    summary: str

    def check_project(
        self, modules: list[ModuleSource]
    ) -> Iterator[Finding]: ...


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]
    files: int
    pragmas: int
    suppressed: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        if self.clean:
            return (
                f"repro lint: clean — {self.files} file(s) scanned, "
                f"{self.suppressed} finding(s) suppressed by "
                f"{self.pragmas} documented pragma(s)"
            )
        lines = [f.render() for f in self.findings]
        lines.append(
            f"repro lint: {len(self.findings)} finding(s) in "
            f"{self.files} file(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "clean": self.clean,
            "files": self.files,
            "pragmas": self.pragmas,
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }


def _expand(paths: Iterable[Path]) -> list[Path]:
    """Python files under the given paths, sorted and de-duplicated."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            seen.setdefault(candidate.resolve(), None)
    return sorted(seen)


class Linter:
    """Run a rule set over a file tree under a zone policy."""

    def __init__(
        self,
        rules: Iterable[Rule] | None = None,
        project_rules: Iterable[ProjectRule] | None = None,
        policy: ZonePolicy = DEFAULT_POLICY,
    ):
        if rules is None or project_rules is None:
            from .rules import DEFAULT_PROJECT_RULES, DEFAULT_RULES

            rules = DEFAULT_RULES if rules is None else rules
            if project_rules is None:
                project_rules = DEFAULT_PROJECT_RULES
        self.rules = list(rules)
        self.project_rules = list(project_rules)
        self.policy = policy

    def lint(self, paths: Iterable[Path | str]) -> LintReport:
        modules: list[ModuleSource] = []
        findings: list[Finding] = []
        files = 0
        for path in _expand(Path(p) for p in paths):
            files += 1
            try:
                modules.append(ModuleSource.load(path))
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        path=str(path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        rule_id=META_RULE_ID,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        for module in modules:
            active = self.policy.rules_for(module.module)
            for rule in self.rules:
                if rule.rule_id in active:
                    findings.extend(rule.check(module))
        for project_rule in self.project_rules:
            findings.extend(project_rule.check_project(modules))

        pragma_index = {str(m.path.resolve()): m.pragmas for m in modules}
        kept, suppressed = [], 0
        for finding in findings:
            if self._suppressed(finding, pragma_index):
                suppressed += 1
            else:
                kept.append(finding)
        total_pragmas = 0
        for module in modules:
            for pragma in module.pragmas:
                total_pragmas += 1
                kept.extend(self._pragma_hygiene(module, pragma))
        kept.sort(key=lambda f: f.sort_key)
        return LintReport(
            findings=kept,
            files=files,
            pragmas=total_pragmas,
            suppressed=suppressed,
        )

    def _suppressed(
        self, finding: Finding, pragma_index: dict[str, list[Pragma]]
    ) -> bool:
        if finding.rule_id == META_RULE_ID:
            return False
        try:
            key = str(Path(finding.path).resolve())
        except OSError:
            key = finding.path
        for pragma in pragma_index.get(key, []):
            if (
                finding.line <= pragma.target <= finding.end_line
                and finding.rule_id in pragma.rules
            ):
                pragma.used.add(finding.rule_id)
                return True
        return False

    def _pragma_hygiene(
        self, module: ModuleSource, pragma: Pragma
    ) -> list[Finding]:
        rules = ",".join(sorted(pragma.rules))
        if not pragma.documented:
            return [
                Finding(
                    path=str(module.path),
                    line=pragma.line,
                    col=1,
                    rule_id=META_RULE_ID,
                    message=(
                        f"undocumented pragma allow[{rules}]: append "
                        "'-- <why this violation is safe>'"
                    ),
                )
            ]
        if not pragma.used:
            return [
                Finding(
                    path=str(module.path),
                    line=pragma.line,
                    col=1,
                    rule_id=META_RULE_ID,
                    message=(
                        f"unused pragma allow[{rules}]: it suppresses "
                        "nothing — remove it or fix the rule id"
                    ),
                )
            ]
        return []
