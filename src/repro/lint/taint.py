"""Interprocedural taint: nondeterminism sources → durable sinks.

The per-file rules prove *syntactic* invariants; this engine proves the
*flow* invariant behind them: no nondeterministic value — unseeded
entropy, wall-clock reads, environment lookups, set/pool iteration
order — may reach the durable artifacts other processes trust
(checkpoint serializers, the ``history.jsonl`` stream, ``result.json``/
warm-store writes, ``derive_seed`` inputs), no matter how many calls it
flows through on the way.

The analysis is summary-based and runs to a fixpoint over the project
call graph:

* each function gets a :class:`Summary` — whether its return value is
  intrinsically tainted, which parameters flow to its return, and which
  parameters reach a durable sink inside it (transitively);
* an intraprocedural pass propagates taint through assignments,
  containers, returns, and resolved calls, consuming callee summaries;
* witnesses carry a human-readable hop chain, so every finding prints
  the full source→sink call path.

Design choices, stated so they are reviewable: branch bodies are
analyzed flow-insensitively (later assignments kill earlier taint —
the analysis under-approximates rather than guesses), dict-key taint
does not taint the dict (content-identical, order-divergent dicts are
out of scope), and unresolved calls propagate their arguments' value
taint through to their result (pure helpers keep taint; sanctioned
sanitizers like ``sorted()`` are special-cased).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from .callgraph import CallResolver, FunctionInfo, ProjectIndex
from .names import attr_chain
from .rules.clock import WALL_CLOCK_CALLS
from .rules.rng import classify_unseeded

#: Taint kinds whose hazard is *iteration order*, not value entropy —
#: ``sorted()`` is a full sanitizer for these.
ORDER_KINDS = frozenset({"set-order", "pool-order"})

#: Entropy sources beyond the RNG rule's scope: process identity and
#: unique-id generators whose values must never enter durable results.
_ENTROPY_CALLS = frozenset(
    {
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "os.getpid",
        "secrets.token_hex",
        "secrets.token_bytes",
        "secrets.token_urlsafe",
    }
)

_ENV_CALLS = frozenset({"os.getenv", "os.environ.get"})

#: Completion-order iteration over worker pools.
_POOL_ORDER_CALLS = frozenset({"concurrent.futures.as_completed"})
_POOL_ORDER_METHODS = frozenset({"imap_unordered", "as_completed"})

#: Builtins that materialize their argument's iteration order.
_ORDER_MATERIALIZERS = frozenset(
    {"list", "tuple", "enumerate", "iter", "reversed", "next"}
)

#: Builtins whose result is order-insensitive even over a set.
_ORDER_NEUTRAL = frozenset({"len", "sum", "min", "max", "any", "all", "bool"})

#: The checkpoint serializer module (sink family 1).
SERIALIZER_MODULE = "repro.runs.checkpoint"

#: Durable registry write methods (sink family 2) — matched by method
#: name so an unannotated ``handle`` parameter still hits the sink.
DURABLE_WRITE_METHODS = frozenset(
    {
        "log_history",
        "save_checkpoint",
        "finish",
        "record_error",
        "save_warm_summaries",
    }
)

#: Seed-derivation functions (sink family 3): a tainted key part gives
#: every downstream draw a nondeterministic stream.
_SEED_SINKS = frozenset(
    {"repro.runs.seeds.derive_seed", "repro.runs.seeds.stable_digest"}
)

#: Atomic-write helper (sink family 4): tainted content in, torn
#: determinism out.
_ATOMIC_WRITE_SINKS = frozenset({"repro.runs.registry._write_atomic"})

#: Transport artifact writes (sink family 5) — matched by method name
#: like the registry writes, so ``node.write_atomic(...)`` on an
#: unannotated :class:`~repro.runs.transport.RunNode` still hits the
#: sink. Only the unconditional artifact write is a determinism sink:
#: the conditional-put coordination writes (``create_if_absent``/
#: ``put_if_match`` of lease state) intentionally carry owner nonces
#: and wall-clock deadlines, and ``append_line`` carries timestamped
#: telemetry — nondeterministic by design, never replayed into results.
TRANSPORT_WRITE_METHODS = frozenset({"write_atomic"})

#: Cap on witness chains — beyond this the story is long enough.
_MAX_CHAIN = 16


@dataclass(frozen=True)
class TaintSource:
    kind: str
    location: str
    description: str


@dataclass(frozen=True)
class Witness:
    """One tainted value and the hop chain that produced it."""

    source: TaintSource
    chain: tuple[str, ...]

    def extended(self, hop: str) -> "Witness":
        if len(self.chain) >= _MAX_CHAIN:
            return self
        return replace(self, chain=(*self.chain, hop))


@dataclass(frozen=True)
class SinkReach:
    """A durable sink reachable from a function parameter."""

    sink: str
    location: str
    chain: tuple[str, ...]

    def prefixed(self, hop: str) -> "SinkReach":
        if len(self.chain) >= _MAX_CHAIN:
            return self
        return replace(self, chain=(hop, *self.chain))


@dataclass
class Summary:
    """What a function does with taint, seen from its callers."""

    returns: Witness | None = None
    returns_params: frozenset[int] = frozenset()
    param_sinks: dict[int, SinkReach] = field(default_factory=dict)

    def signature(self) -> tuple:
        """Convergence key: chains are write-once, so flags suffice."""
        return (
            self.returns is not None,
            self.returns_params,
            frozenset(self.param_sinks),
        )


@dataclass(frozen=True)
class TaintFlow:
    """One source→sink flow, ready to become a finding."""

    path: str
    node: ast.AST
    source: TaintSource
    sink: str
    trace: tuple[str, ...]


@dataclass
class _Value:
    """Abstract value of one expression."""

    witness: Witness | None = None
    params: frozenset[int] = frozenset()
    is_set: bool = False

    @classmethod
    def merge(cls, *values: "_Value") -> "_Value":
        witness = None
        params: frozenset[int] = frozenset()
        is_set = False
        for value in values:
            if witness is None:
                witness = value.witness
            params |= value.params
            is_set = is_set or value.is_set
        return cls(witness=witness, params=params, is_set=is_set)


_CLEAN = _Value()


def _is_set_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    chain = attr_chain(
        annotation.value if isinstance(annotation, ast.Subscript) else annotation
    )
    if chain is None:
        return False
    return chain.split(".")[-1] in {"set", "frozenset", "Set", "FrozenSet"}


class TaintEngine:
    """Whole-program fixpoint over function summaries."""

    def __init__(self, index: ProjectIndex, max_rounds: int = 20) -> None:
        self.index = index
        self.max_rounds = max_rounds
        self.summaries: dict[str, Summary] = {}
        self._resolvers: dict[str, CallResolver] = {}

    def resolver_for(self, func: FunctionInfo) -> CallResolver:
        resolver = self._resolvers.get(func.qualname)
        if resolver is None:
            resolver = CallResolver(self.index, func)
            self._resolvers[func.qualname] = resolver
        return resolver

    def run(self) -> list[TaintFlow]:
        names = sorted(self.index.functions)
        self.summaries = {name: Summary() for name in names}
        for _ in range(self.max_rounds):
            changed = False
            for name in names:
                func = self.index.functions[name]
                summary = _FunctionPass(self, func).summarize()
                if summary.signature() != self.summaries[name].signature():
                    changed = True
                self.summaries[name] = summary
            if not changed:
                break
        flows: list[TaintFlow] = []
        seen: set[tuple] = set()
        for name in names:
            func = self.index.functions[name]
            for flow in _FunctionPass(self, func).collect_flows():
                key = (flow.path, flow.node.lineno, flow.sink, flow.source)
                if key not in seen:
                    seen.add(key)
                    flows.append(flow)
        return flows


class _FunctionPass:
    """One intraprocedural pass over a function body."""

    def __init__(self, engine: TaintEngine, func: FunctionInfo) -> None:
        self.engine = engine
        self.func = func
        self.resolver = engine.resolver_for(func)
        self.module = func.module
        self.values: dict[str, _Value] = {}
        self.returns: Witness | None = None
        self.returns_params: frozenset[int] = frozenset()
        self.param_sinks: dict[int, SinkReach] = {}
        self.flows: list[TaintFlow] = []
        self.emit = False
        for position, (name, annotation) in enumerate(self._all_params()):
            self.values[name] = _Value(
                params=frozenset({position}),
                is_set=_is_set_annotation(annotation),
            )

    def _all_params(self) -> list[tuple[str, ast.expr | None]]:
        args = self.func.node.args
        params = [
            (a.arg, a.annotation)
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        if args.vararg:
            params.append((args.vararg.arg, None))
        if args.kwarg:
            params.append((args.kwarg.arg, None))
        return params

    def _location(self, node: ast.AST) -> str:
        return f"{self.module.path}:{getattr(node, 'lineno', 1)}"

    def _hop(self, node: ast.AST, what: str) -> str:
        return f"{self.func.qualname} ({self._location(node)}): {what}"

    # -- entry points ---------------------------------------------------
    def summarize(self) -> Summary:
        self._run_body()
        return Summary(
            returns=self.returns,
            returns_params=self.returns_params,
            param_sinks=self.param_sinks,
        )

    def collect_flows(self) -> list[TaintFlow]:
        self.emit = True
        self._run_body()
        return self.flows

    def _run_body(self) -> None:
        # Two sweeps propagate taint around loop back-edges; the second
        # sweep re-emits, so flow collection de-duplicates at the engine.
        for _ in range(2):
            for stmt in self.func.node.body:
                self._exec(stmt)

    # -- statements -----------------------------------------------------
    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            value = self._eval(stmt.value) if stmt.value else _CLEAN
            if _is_set_annotation(stmt.annotation):
                value = replace(value, is_set=True)
            self._assign(stmt.target, value, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.values.get(stmt.target.id, _CLEAN)
                self.values[stmt.target.id] = _Value.merge(current, value)
            else:
                self._assign(stmt.target, value, stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value)
                if self.returns is None:
                    self.returns = value.witness
                self.returns_params |= value.params
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.For):
            iterated = self._eval(stmt.iter)
            element = self._element_of(iterated, stmt.iter)
            self._assign(stmt.target, element, stmt.iter)
            for _ in range(2):
                for inner in stmt.body:
                    self._exec(inner)
            for inner in stmt.orelse:
                self._exec(inner)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for _ in range(2):
                for inner in stmt.body:
                    self._exec(inner)
            for inner in stmt.orelse:
                self._exec(inner)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            for inner in (*stmt.body, *stmt.orelse):
                self._exec(inner)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                context = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, context, item.context_expr)
            for inner in stmt.body:
                self._exec(inner)
        elif isinstance(stmt, ast.Try):
            for inner in stmt.body:
                self._exec(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._exec(inner)
            for inner in (*stmt.orelse, *stmt.finalbody):
                self._exec(inner)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.values.pop(target.id, None)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Nested defs/classes are summarized separately; imports, pass,
        # global/nonlocal, break/continue carry no dataflow here.

    def _assign(
        self, target: ast.expr, value: _Value, source: ast.expr | None
    ) -> None:
        if isinstance(target, ast.Name):
            self.values[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = (
                self._element_of(value, source) if source is not None else value
            )
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._assign(inner, element, None)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            self.values[f"{target.value.id}.{target.attr}"] = value
        elif isinstance(target, ast.Subscript):
            # Weak update: a container holding a tainted value is tainted.
            if value.witness is not None and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                current = self.values.get(name, _CLEAN)
                self.values[name] = _Value.merge(
                    current, replace(value, is_set=current.is_set)
                )

    def _element_of(self, value: _Value, expr: ast.expr | None) -> _Value:
        """Value of one element drawn by iterating ``value``."""
        if value.is_set and expr is not None:
            witness = value.witness or self._order_witness(expr)
            return replace(value, witness=witness, is_set=False)
        return replace(value, is_set=False)

    def _order_witness(self, node: ast.expr) -> Witness:
        source = TaintSource(
            kind="set-order",
            location=self._location(node),
            description=(
                "iteration over a set — element order is hash-seed and "
                "insertion-history dependent"
            ),
        )
        return Witness(
            source=source,
            chain=(self._hop(node, "iterates a set unsorted"),),
        )

    # -- expressions ----------------------------------------------------
    def _eval(self, node: ast.expr | None) -> _Value:
        if node is None:
            return _CLEAN
        if isinstance(node, ast.Name):
            return self.values.get(node.id, _CLEAN)
        if isinstance(node, ast.Constant):
            return _CLEAN
        if isinstance(node, ast.Attribute):
            chain = attr_chain(node)
            if chain is not None and chain in self.values:
                return self.values[chain]
            return replace(self._eval(node.value), is_set=False)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Set,)):
            return replace(
                _Value.merge(*(self._eval(e) for e in node.elts)), is_set=True
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            return replace(
                _Value.merge(*(self._eval(e) for e in node.elts)), is_set=False
            )
        if isinstance(node, ast.Dict):
            # Key taint deliberately dropped: same keys, different
            # insertion order, identical content.
            return _Value.merge(
                *(self._eval(v) for v in node.values if v is not None)
            )
        if isinstance(node, ast.BinOp):
            return _Value.merge(self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.BoolOp):
            return _Value.merge(*(self._eval(v) for v in node.values))
        if isinstance(node, ast.UnaryOp):
            return replace(self._eval(node.operand), is_set=False)
        if isinstance(node, ast.Compare):
            merged = _Value.merge(
                self._eval(node.left), *(self._eval(c) for c in node.comparators)
            )
            # Membership and ordering observe values, not iteration
            # order: drop order taint, keep value taint.
            if merged.witness is not None and merged.witness.source.kind in (
                ORDER_KINDS
            ):
                merged = replace(merged, witness=None)
            return replace(merged, is_set=False)
        if isinstance(node, ast.IfExp):
            return _Value.merge(
                self._eval(node.test),
                self._eval(node.body),
                self._eval(node.orelse),
            )
        if isinstance(node, ast.Subscript):
            return replace(self._eval(node.value), is_set=False)
        if isinstance(node, ast.Starred):
            return self._element_of(self._eval(node.value), node.value)
        if isinstance(node, ast.JoinedStr):
            return _Value.merge(*(self._eval(v) for v in node.values))
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(node)
        if isinstance(node, ast.Lambda):
            return _CLEAN
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            return self._eval(node.value) if node.value else _CLEAN
        return _CLEAN

    def _eval_comprehension(self, node: ast.expr) -> _Value:
        for comp in node.generators:
            iterated = self._eval(comp.iter)
            self._assign(comp.target, self._element_of(iterated, comp.iter),
                         comp.iter)
            for condition in comp.ifs:
                self._eval(condition)
        if isinstance(node, ast.DictComp):
            result = self._eval(node.value)
        elif isinstance(node, ast.SetComp):
            result = replace(self._eval(node.elt), is_set=True)
        else:
            result = self._eval(node.elt)
        # A comprehension over a set materializes its iteration order
        # (SetComp excepted: the result's own order is the hazard, and
        # it re-flags on its next iteration).
        return result

    # -- calls ----------------------------------------------------------
    def _eval_call(self, call: ast.Call) -> _Value:
        qual = self.resolver.resolver.qualname(call)
        chain = attr_chain(call.func)
        arg_values = [self._eval(a) for a in call.args]
        keyword_values = [(k.arg, self._eval(k.value)) for k in call.keywords]
        merged_args = _Value.merge(
            *arg_values, *(v for _, v in keyword_values)
        )

        # Sanctioned sanitizer: sorted() pins an order and emits a list.
        if isinstance(call.func, ast.Name) and call.func.id == "sorted":
            if (
                merged_args.witness is not None
                and merged_args.witness.source.kind in ORDER_KINDS
            ):
                merged_args = replace(merged_args, witness=None)
            return replace(merged_args, is_set=False)
        if isinstance(call.func, ast.Name) and call.func.id in _ORDER_NEUTRAL:
            if (
                merged_args.witness is not None
                and merged_args.witness.source.kind in ORDER_KINDS
            ):
                merged_args = replace(merged_args, witness=None)
            return replace(merged_args, is_set=False)

        # Intrinsic sources.
        source = self._classify_source(call, qual, chain)
        if source is not None:
            witness = Witness(
                source=source,
                chain=(self._hop(call, source.description),),
            )
            return _Value.merge(
                replace(merged_args, witness=witness), merged_args
            )

        # Set constructors and order materializers.
        if isinstance(call.func, ast.Name):
            name = call.func.id
            if name in ("set", "frozenset"):
                return replace(merged_args, is_set=True)
            if name in _ORDER_MATERIALIZERS and any(
                v.is_set for v in arg_values
            ):
                witness = merged_args.witness or self._order_witness(call)
                return replace(merged_args, witness=witness, is_set=False)
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "join"
            and any(v.is_set for v in arg_values)
        ):
            witness = merged_args.witness or self._order_witness(call)
            return replace(merged_args, witness=witness, is_set=False)

        # Receiver of a bound call contributes its taint (and becomes
        # argument 0 of a resolved method).
        receiver = (
            self._eval(call.func.value)
            if isinstance(call.func, ast.Attribute)
            else None
        )

        callee = self.resolver.resolve(call)
        sink = self._sink_label(call, qual, callee)
        positional = self._bind_positions(call, callee, arg_values, receiver)

        if sink is not None:
            self._check_sink_args(
                call, sink, arg_values, keyword_values, receiver
            )
        if callee is not None:
            return self._apply_summary(
                call, callee, positional, merged_args, receiver
            )

        # Unresolved call: value taint flows through.
        merged = (
            _Value.merge(merged_args, receiver)
            if receiver is not None
            else merged_args
        )
        return replace(merged, is_set=False)

    def _classify_source(
        self, call: ast.Call, qual: str | None, chain: str | None
    ) -> TaintSource | None:
        if qual is not None:
            rng_reason = classify_unseeded(qual, call)
            if rng_reason is not None:
                return TaintSource("rng", self._location(call), rng_reason)
            if qual in WALL_CLOCK_CALLS:
                return TaintSource(
                    "clock",
                    self._location(call),
                    f"wall-clock read {qual}()",
                )
            if qual in _ENTROPY_CALLS:
                return TaintSource(
                    "entropy",
                    self._location(call),
                    f"{qual}() is unique per process/call by design",
                )
            if qual in _ENV_CALLS or (
                qual is not None and qual.startswith("os.environ.")
            ):
                return TaintSource(
                    "env",
                    self._location(call),
                    f"environment lookup {qual}()",
                )
            if qual in _POOL_ORDER_CALLS:
                return TaintSource(
                    "pool-order",
                    self._location(call),
                    f"{qual}() yields results in completion order",
                )
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _POOL_ORDER_METHODS
        ):
            return TaintSource(
                "pool-order",
                self._location(call),
                f".{call.func.attr}() yields results in completion order",
            )
        return None

    def _sink_label(
        self,
        call: ast.Call,
        qual: str | None,
        callee: FunctionInfo | None,
    ) -> str | None:
        if callee is not None:
            if callee.module.module == SERIALIZER_MODULE and (
                callee.node.name.endswith("_to_dict")
                or callee.node.name.endswith("_from_dict")
            ):
                return f"checkpoint serializer {callee.node.name}()"
            if callee.qualname in _SEED_SINKS:
                return f"seed derivation {callee.node.name}()"
            if callee.qualname in _ATOMIC_WRITE_SINKS:
                return "durable artifact write _write_atomic()"
            owner = callee.owner or ""
            if (
                owner.startswith("repro.runs.registry.")
                and callee.node.name in DURABLE_WRITE_METHODS
            ):
                return f"durable registry write .{callee.node.name}()"
            if (
                owner.startswith(
                    ("repro.runs.transport.", "repro.distrib.objectstore.")
                )
                and callee.node.name in TRANSPORT_WRITE_METHODS
            ):
                return f"durable transport write .{callee.node.name}()"
        if qual is not None:
            if qual.startswith(SERIALIZER_MODULE + ".") and (
                qual.endswith("_to_dict") or qual.endswith("_from_dict")
            ):
                return f"checkpoint serializer {qual.rsplit('.', 1)[1]}()"
            if qual in _SEED_SINKS:
                return f"seed derivation {qual.rsplit('.', 1)[1]}()"
            if qual in _ATOMIC_WRITE_SINKS:
                return "durable artifact write _write_atomic()"
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in DURABLE_WRITE_METHODS
            and callee is None
        ):
            return f"durable registry write .{call.func.attr}()"
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in TRANSPORT_WRITE_METHODS
            and callee is None
        ):
            return f"durable transport write .{call.func.attr}()"
        return None

    def _bind_positions(
        self,
        call: ast.Call,
        callee: FunctionInfo | None,
        arg_values: list[_Value],
        receiver: _Value | None,
    ) -> dict[int, _Value]:
        """Map callee parameter positions to the values passed."""
        if callee is None:
            return {}
        offset = 0
        positions: dict[int, _Value] = {}
        if callee.owner is not None and isinstance(call.func, ast.Attribute):
            offset = 1
            if receiver is not None:
                positions[0] = receiver
        names = callee.param_names()
        for position, value in enumerate(arg_values):
            if position < len(call.args) and isinstance(
                call.args[position], ast.Starred
            ):
                continue
            positions[position + offset] = value
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in names:
                positions[names.index(keyword.arg)] = self._eval(keyword.value)
        return positions

    def _apply_summary(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        positional: dict[int, _Value],
        merged_args: _Value,
        receiver: _Value | None,
    ) -> _Value:
        summary = self.engine.summaries.get(callee.qualname, Summary())

        # Tainted argument meets a parameter that reaches a sink.
        for position, value in positional.items():
            reach = summary.param_sinks.get(position)
            if reach is None:
                continue
            if value.witness is not None and self.emit:
                self.flows.append(
                    TaintFlow(
                        path=str(self.module.path),
                        node=call,
                        source=value.witness.source,
                        sink=reach.sink,
                        trace=(
                            *value.witness.chain,
                            self._hop(
                                call,
                                f"passes tainted value to {callee.qualname}()",
                            ),
                            *reach.chain,
                        ),
                    )
                )
            for param in value.params:
                self.param_sinks.setdefault(
                    param,
                    reach.prefixed(
                        self._hop(
                            call,
                            "forwards its parameter "
                            f"to {callee.qualname}()",
                        )
                    ),
                )

        # Return-value taint.
        result_params: frozenset[int] = frozenset()
        witness: Witness | None = None
        if summary.returns is not None:
            witness = summary.returns.extended(
                self._hop(
                    call, f"receives tainted return of {callee.qualname}()"
                )
            )
        for position in summary.returns_params:
            value = positional.get(position)
            if value is None:
                continue
            if witness is None and value.witness is not None:
                witness = value.witness.extended(
                    self._hop(
                        call,
                        "tainted value flows through "
                        f"{callee.qualname}() and back",
                    )
                )
            result_params |= value.params
        return _Value(witness=witness, params=result_params, is_set=False)

    def _check_sink_args(
        self,
        call: ast.Call,
        sink: str,
        arg_values: list[_Value],
        keyword_values: list[tuple[str | None, _Value]],
        receiver: _Value | None,
    ) -> None:
        tainted = [
            v
            for v in (*arg_values, *(v for _, v in keyword_values))
            if v.witness is not None
        ]
        flowing_params: frozenset[int] = frozenset()
        for value in (*arg_values, *(v for _, v in keyword_values)):
            flowing_params |= value.params
        for param in flowing_params:
            self.param_sinks.setdefault(
                param,
                SinkReach(
                    sink=sink,
                    location=self._location(call),
                    chain=(self._hop(call, f"passes it to {sink}"),),
                ),
            )
        if not self.emit:
            return
        for value in tainted:
            self.flows.append(
                TaintFlow(
                    path=str(self.module.path),
                    node=call,
                    source=value.witness.source,
                    sink=sink,
                    trace=(
                        *value.witness.chain,
                        self._hop(call, f"passes it to {sink}"),
                    ),
                )
            )
