"""RL004 — non-atomic durable writes in the registry/distrib zone.

The crash-safety story of the run registry rests on exactly two write
idioms:

* **atomic replace** — write a unique same-directory temp file, then
  ``os.replace``/``os.link`` it into place
  (:func:`repro.runs.registry._write_atomic`); readers see the old
  content or the new, never a torn file, and the presence of
  ``result.json`` can safely *mean* completion;
* **append-only streaming** — the ``history.jsonl`` log, opened with
  mode ``"a"``, where a torn tail line is detected and dropped.

With the pluggable registry transport a third idiom joins them: the
**conditional put** (:mod:`repro.runs.transport`). ``write_atomic``
stages and promotes server-side (temp + ``os.replace`` on fs),
``create_if_absent``/``put_if_match`` commit a whole body iff a version
precondition holds, and ``append_line`` is the stream append — all
atomic by the transport contract, so calls through them are sanctioned
writes, never findings (:data:`ATOMIC_TRANSPORT_METHODS`).

A bare ``open(path, "w")``, ``Path.write_text``, or streaming
``json.dump`` to a registry artifact re-introduces the
half-written-file window every peer (worker, coordinator, ``--status``,
resume) would then have to defend against. The rule flags write-mode
opens, ``write_text``/``write_bytes`` method calls, and ``json.dump``
in the durable zone.

The temp-file half of the atomic idiom itself is recognized by
dataflow, not by pragma: a write whose target name later flows into an
``os.replace``/``os.rename``/``os.link`` promotion (or a
``.replace()``/``.rename()`` method call) in the same function is the
idiom, not a violation. Whether that promotion happens on *all* paths
is the deep pass's job (RL102, :mod:`repro.lint.flows.atomic`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..names import ModuleResolver, parent_map

_WRITE_METHOD_NAMES = frozenset({"write_text", "write_bytes"})

#: ``os``-level promotion functions: first argument is the temp path.
PROMOTE_FUNCS = frozenset({"os.replace", "os.rename", "os.link"})

#: Path-object promotion methods: the receiver is the temp path.
PROMOTE_METHODS = frozenset({"replace", "rename"})

#: Registry-transport write methods that are atomic by construction:
#: there is no torn intermediate state for this rule to guard against,
#: exactly as with an ``os.replace``-promoted temp file. Calls through
#: these names are sanctioned durable writes in any zone.
ATOMIC_TRANSPORT_METHODS = frozenset(
    {"write_atomic", "create_if_absent", "put_if_match", "append_line"}
)

_REMEDY = (
    "; write via repro.runs.registry._write_atomic (unique temp + atomic "
    "rename) or append to the history.jsonl stream"
)


def _literal_mode(node: ast.Call, position: int) -> str | None:
    """The call's file-mode argument when it is a string literal."""
    mode: ast.AST | None = None
    if len(node.args) > position:
        mode = node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _is_write_mode(mode: str | None) -> bool:
    # Unreadable (non-literal) modes pass: the rule proves violations,
    # it does not guess. "r+" still rewrites in place, hence "+".
    return mode is not None and any(c in mode for c in "wx+a") and "a" not in mode


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """Nearest enclosing function definition of a node, or None."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def promoted_name(call: ast.Call, resolver: ModuleResolver) -> str | None:
    """The variable a call atomically promotes into place, or None.

    ``os.replace(tmp, dst)`` / ``os.rename`` / ``os.link`` promote their
    first argument; ``tmp.replace(dst)`` / ``tmp.rename(dst)`` promote
    their receiver.
    """
    qual = resolver.qualname(call)
    if qual in PROMOTE_FUNCS:
        if call.args and isinstance(call.args[0], ast.Name):
            return call.args[0].id
        return None
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in PROMOTE_METHODS
        and isinstance(func.value, ast.Name)
        and (call.args or call.keywords)
    ):
        return func.value.id
    return None


class NonAtomicWriteRule:
    """RL004: durable artifacts are written atomically or append-only."""

    rule_id = "RL004"
    name = "non-atomic-durable-write"
    summary = (
        "bare open(.., 'w')/write_text/json.dump in the durable zone; "
        "use _write_atomic or the append-only history stream"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        resolver = ModuleResolver(module.tree, module=module.module)
        parents = parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            message, target = self._classify(node, resolver)
            if message is None:
                continue
            if target is not None and self._is_promoted(
                node, target, parents, resolver
            ):
                continue
            yield finding_at(
                module.path, node, self.rule_id, message + _REMEDY
            )

    def _classify(
        self, node: ast.Call, resolver: ModuleResolver
    ) -> tuple[str | None, str | None]:
        """(message, written-variable-name) of a write call, or (None, None).

        The variable name is the handle the atomic idiom would promote:
        the receiver of ``tmp.write_text(...)`` or the first argument of
        ``open(tmp, "w")`` when either is a plain name.
        """
        qual = resolver.qualname(node)
        if qual == "json.dump":
            return (
                "streaming json.dump() writes the document "
                "incrementally — a crash leaves a torn file"
            ), None
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            if _is_write_mode(_literal_mode(node, position=1)):
                target = (
                    node.args[0].id
                    if node.args and isinstance(node.args[0], ast.Name)
                    else None
                )
                return "non-atomic open() in write mode", target
            return None, None
        if isinstance(func, ast.Attribute):
            if func.attr in ATOMIC_TRANSPORT_METHODS:
                return None, None  # conditional-put idiom: atomic by contract
            receiver = (
                func.value.id if isinstance(func.value, ast.Name) else None
            )
            if func.attr in _WRITE_METHOD_NAMES:
                return f"non-atomic .{func.attr}()", receiver
            if func.attr == "open" and _is_write_mode(
                _literal_mode(node, position=0)
            ):
                return "non-atomic .open() in write mode", receiver
        return None, None

    def _is_promoted(
        self,
        write: ast.Call,
        target: str,
        parents: dict[ast.AST, ast.AST],
        resolver: ModuleResolver,
    ) -> bool:
        """Whether ``target`` is later atomically promoted in this function."""
        scope = enclosing_function(write, parents)
        if scope is None:
            return False
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and node.lineno >= write.lineno
                and node is not write
                and promoted_name(node, resolver) == target
            ):
                return True
        return False
