"""RL004 — non-atomic durable writes in the registry/distrib zone.

The crash-safety story of the run registry rests on exactly two write
idioms:

* **atomic replace** — write a unique same-directory temp file, then
  ``os.replace``/``os.link`` it into place
  (:func:`repro.runs.registry._write_atomic`); readers see the old
  content or the new, never a torn file, and the presence of
  ``result.json`` can safely *mean* completion;
* **append-only streaming** — the ``history.jsonl`` log, opened with
  mode ``"a"``, where a torn tail line is detected and dropped.

A bare ``open(path, "w")``, ``Path.write_text``, or streaming
``json.dump`` to a registry artifact re-introduces the
half-written-file window every peer (worker, coordinator, ``--status``,
resume) would then have to defend against. The rule flags write-mode
opens, ``write_text``/``write_bytes`` method calls, and ``json.dump``
in the durable zone; the temp-file halves of the atomic idiom itself
carry documented pragmas.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..names import ImportMap, call_qualname

_WRITE_METHOD_NAMES = frozenset({"write_text", "write_bytes"})

_REMEDY = (
    "; write via repro.runs.registry._write_atomic (unique temp + atomic "
    "rename) or append to the history.jsonl stream"
)


def _literal_mode(node: ast.Call, position: int) -> str | None:
    """The call's file-mode argument when it is a string literal."""
    mode: ast.AST | None = None
    if len(node.args) > position:
        mode = node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _is_write_mode(mode: str | None) -> bool:
    # Unreadable (non-literal) modes pass: the rule proves violations,
    # it does not guess. "r+" still rewrites in place, hence "+".
    return mode is not None and any(c in mode for c in "wx+a") and "a" not in mode


class NonAtomicWriteRule:
    """RL004: durable artifacts are written atomically or append-only."""

    rule_id = "RL004"
    name = "non-atomic-durable-write"
    summary = (
        "bare open(.., 'w')/write_text/json.dump in the durable zone; "
        "use _write_atomic or the append-only history stream"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = ImportMap.from_tree(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._classify(node, imports)
            if message is not None:
                yield finding_at(
                    module.path, node, self.rule_id, message + _REMEDY
                )

    def _classify(
        self, node: ast.Call, imports: ImportMap
    ) -> str | None:
        qual = call_qualname(node, imports)
        if qual == "json.dump":
            return (
                "streaming json.dump() writes the document "
                "incrementally — a crash leaves a torn file"
            )
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            if _is_write_mode(_literal_mode(node, position=1)):
                return "non-atomic open() in write mode"
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in _WRITE_METHOD_NAMES:
                return f"non-atomic .{func.attr}()"
            if func.attr == "open" and _is_write_mode(
                _literal_mode(node, position=0)
            ):
                return "non-atomic .open() in write mode"
        return None
