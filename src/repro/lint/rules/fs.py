"""RL003 — unsorted filesystem scans in deterministic zones.

``os.listdir`` / ``Path.iterdir`` / ``glob`` return entries in
filesystem-dependent order (ext4, tmpfs, and NFS all disagree), so any
search or merge that iterates a directory unsorted produces
machine-dependent results — the registry's merged reports are
bit-identical across machines only because every scan goes through
``sorted(...)``.

The rule flags a scan call unless it is *directly* wrapped in
``sorted()`` (one intervening ``list()``/``tuple()`` is tolerated).
Scans whose order provably cannot matter (e.g. deleting every match)
still must sort or carry a pragma — cheap, and it keeps the rule free
of flow analysis.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..names import ModuleResolver, attr_chain, parent_map

#: Fully-qualified scan functions.
SCAN_FUNCS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Method names treated as scans on any receiver (Path-like heuristic).
SCAN_METHODS = frozenset({"iterdir", "glob", "rglob"})

_WRAPPERS = frozenset({"list", "tuple"})


def _called_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        return chain
    return None


class UnsortedScanRule:
    """RL003: every directory scan is wrapped in sorted()."""

    rule_id = "RL003"
    name = "unsorted-fs-scan"
    summary = (
        "os.listdir/Path.iterdir/glob results are filesystem-ordered; "
        "wrap every scan in sorted()"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        resolver = ModuleResolver(module.tree, module=module.module)
        parents = parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._scan_label(node, resolver)
            if label is None:
                continue
            if self._is_sorted(node, parents):
                continue
            yield finding_at(
                module.path,
                node,
                self.rule_id,
                f"unsorted filesystem scan {label}; wrap it in sorted() — "
                "directory order is filesystem-dependent and breaks "
                "bit-identical replay",
            )

    def _scan_label(
        self, node: ast.Call, resolver: ModuleResolver
    ) -> str | None:
        qual = resolver.qualname(node)
        if qual in SCAN_FUNCS:
            return f"{qual}()"
        if (
            qual is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in SCAN_METHODS
        ):
            return f".{node.func.attr}()"
        return None

    def _is_sorted(
        self, node: ast.Call, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        parent = parents.get(node)
        name = _called_name(parent)
        if name in _WRAPPERS and node in parent.args:
            node, parent = parent, parents.get(parent)
            name = _called_name(parent)
        return name == "sorted" and node in parent.args
