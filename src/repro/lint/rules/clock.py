"""RL002 — wall-clock reads in deterministic zones.

Search, pricing, and campaign-progress decisions must be pure functions
of (configuration, seed, durable registry state); a ``time.time()`` or
``datetime.now()`` on such a path makes outcomes depend on *when* the
code ran — the classic source of unreproducible lease/timeout behavior
and untestable expiry logic.

The sanctioned alternative is the injectable-clock idiom of
:mod:`repro.distrib.lease`: accept a zero-argument ``clock`` callable
defaulting to ``time.time`` and *call the parameter*. Referencing
``time.time`` as a default value is exactly that idiom, so this rule
flags only **calls**.

``time.perf_counter``/``process_time`` are deliberately exempt: they
are relative duration probes used by the evaluator's opt-in timing
telemetry (``collect_timings``) and never feed result data.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..names import ModuleResolver

WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule:
    """RL002: deterministic code takes an injectable clock, never reads one."""

    rule_id = "RL002"
    name = "wall-clock"
    summary = (
        "time.time()/datetime.now() calls are forbidden in deterministic "
        "zones; thread an injectable clock (repro.distrib.clock.Clock)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        resolver = ModuleResolver(module.tree, module=module.module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = resolver.qualname(node)
            if qual in WALL_CLOCK_CALLS:
                yield finding_at(
                    module.path,
                    node,
                    self.rule_id,
                    f"wall-clock read {qual}() in a deterministic zone; "
                    "accept an injectable clock parameter defaulting to "
                    "time.time instead (the repro.distrib.lease idiom)",
                )
