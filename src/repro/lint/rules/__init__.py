"""The shipped rule set.

``DEFAULT_RULES`` are per-file AST rules scoped by the zone policy;
``DEFAULT_PROJECT_RULES`` run once over the whole scanned module set.
"""

from __future__ import annotations

from .checkpoints import CheckpointCompletenessRule
from .clock import WallClockRule
from .fs import UnsortedScanRule
from .rng import UnseededRngRule
from .writes import NonAtomicWriteRule

DEFAULT_RULES = (
    UnseededRngRule(),
    WallClockRule(),
    UnsortedScanRule(),
    NonAtomicWriteRule(),
)

DEFAULT_PROJECT_RULES = (CheckpointCompletenessRule(),)

ALL_RULES = DEFAULT_RULES + DEFAULT_PROJECT_RULES

__all__ = [
    "ALL_RULES",
    "DEFAULT_PROJECT_RULES",
    "DEFAULT_RULES",
    "CheckpointCompletenessRule",
    "NonAtomicWriteRule",
    "UnseededRngRule",
    "UnsortedScanRule",
    "WallClockRule",
]
