"""RL005 — checkpoint-field completeness across the serializer boundary.

Resume is bit-identical only while every field of every ``*Checkpoint``
dataclass survives the JSON round trip through
:mod:`repro.runs.checkpoint`. Adding a field to a checkpoint without
touching its ``*_to_dict``/``*_from_dict`` pair does not fail any type
check and usually no test either — the resumed run silently restarts
that piece of state from its default and diverges generations later.
This rule makes the omission a lint failure.

It is an import-and-inspect pass:

1. every dataclass named ``*Checkpoint`` in the scanned tree is
   collected; its field list comes from importing the real class and
   calling :func:`dataclasses.fields` (inheritance, ``ClassVar``/
   ``InitVar`` exclusion, and field ordering come for free), with an
   AST fallback for modules that do not import (fixture trees);
2. serializer pairs are discovered in ``repro.runs.checkpoint`` by
   annotation, not by name: a ``*_to_dict`` function whose first
   parameter is annotated ``FooCheckpoint`` serializes it, a
   ``*_from_dict`` whose return annotation is ``FooCheckpoint``
   restores it;
3. each class must have both halves, its ``to_dict`` must read every
   field off the checkpoint parameter, and its ``from_dict`` must pass
   every field as a keyword to the constructor.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..engine import ModuleSource
from ..findings import Finding, finding_at

#: The module all checkpoint serializer/loader pairs live in.
SERIALIZER_MODULE = "repro.runs.checkpoint"

RULE_ID = "RL005"


@dataclass(frozen=True)
class CheckpointClass:
    """One ``*Checkpoint`` dataclass found in the scanned tree."""

    name: str
    module: str
    path: str
    line: int
    fields: tuple[str, ...]


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _ast_fields(node: ast.ClassDef) -> tuple[str, ...]:
    names = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation or "InitVar" in annotation:
                continue
            names.append(stmt.target.id)
    return tuple(names)


def _imported_fields(
    module: str, class_name: str, source_path: Path
) -> tuple[str, ...] | None:
    """Field names via a real import, or None when that is impossible.

    The imported module must be the same file we scanned — a fixture
    tree that mirrors real module names must not pick up the installed
    package's classes.
    """
    try:
        imported = importlib.import_module(module)
        imported_path = Path(getattr(imported, "__file__", "")).resolve()
        if imported_path != source_path.resolve():
            return None
        cls = getattr(imported, class_name)
        return tuple(f.name for f in dataclasses.fields(cls))
    except Exception:
        return None


def collect_checkpoint_classes(
    modules: list[ModuleSource],
) -> list[CheckpointClass]:
    """Every ``*Checkpoint`` dataclass in the scanned module set."""
    classes = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.ClassDef)
                and node.name.endswith("Checkpoint")
                and _is_dataclass_decorated(node)
            ):
                continue
            fields = _imported_fields(
                module.module, node.name, module.path
            ) or _ast_fields(node)
            classes.append(
                CheckpointClass(
                    name=node.name,
                    module=module.module,
                    path=str(module.path),
                    line=node.lineno,
                    fields=fields,
                )
            )
    return classes


def _annotation_class(node: ast.expr | None) -> str | None:
    """Last segment of an annotation expression (handles string forms)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip()
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def serializer_pairs(
    tree: ast.Module,
) -> tuple[dict[str, ast.FunctionDef], dict[str, ast.FunctionDef]]:
    """(to_dict, from_dict) functions of the serializer module, by class."""
    to_dict: dict[str, ast.FunctionDef] = {}
    from_dict: dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name.endswith("_to_dict") and node.args.args:
            target = _annotation_class(node.args.args[0].annotation)
            if target and target.endswith("Checkpoint"):
                to_dict[target] = node
        elif node.name.endswith("_from_dict"):
            target = _annotation_class(node.returns)
            if target and target.endswith("Checkpoint"):
                from_dict[target] = node
    return to_dict, from_dict


def _attributes_read(func: ast.FunctionDef, param: str) -> set[str]:
    return {
        node.attr
        for node in ast.walk(func)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == param
    }


def _constructor_kwargs(
    func: ast.FunctionDef, class_name: str
) -> set[str] | None:
    """Keywords passed to ``ClassName(...)`` calls; None when un-analyzable
    (a ``**kwargs`` splat hides the field names)."""
    kwargs: set[str] = set()
    found = False
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = (
            callee.id
            if isinstance(callee, ast.Name)
            else callee.attr if isinstance(callee, ast.Attribute) else None
        )
        if name != class_name:
            continue
        found = True
        for keyword in node.keywords:
            if keyword.arg is None:
                return None
            kwargs.add(keyword.arg)
    return kwargs if found else set()


def check_checkpoint_coverage(
    classes: list[CheckpointClass], serializer: ModuleSource
) -> list[Finding]:
    """Cross-check checkpoint fields against the serializer pairs.

    Separated from the rule class so the mutation tests can feed it a
    synthetic field list (a real field addition, minus the git commit).
    """
    to_dict, from_dict = serializer_pairs(serializer.tree)
    findings: list[Finding] = []
    for cls in classes:
        writer = to_dict.get(cls.name)
        loader = from_dict.get(cls.name)
        if writer is None or loader is None:
            missing = " and ".join(
                label
                for label, fn in (("*_to_dict", writer), ("*_from_dict", loader))
                if fn is None
            )
            findings.append(
                Finding(
                    path=cls.path,
                    line=cls.line,
                    col=1,
                    rule_id=RULE_ID,
                    message=(
                        f"checkpoint dataclass {cls.name} has no {missing} "
                        f"serializer in {SERIALIZER_MODULE}; it cannot "
                        "round-trip through the run registry"
                    ),
                )
            )
            continue
        param = writer.args.args[0].arg
        read = _attributes_read(writer, param)
        for field in cls.fields:
            if field not in read:
                findings.append(
                    finding_at(
                        serializer.path,
                        writer,
                        RULE_ID,
                        f"{cls.name}.{field} is never read by "
                        f"{writer.name}(); the field would be silently "
                        "dropped from checkpoints",
                    )
                )
        passed = _constructor_kwargs(loader, cls.name)
        if passed is None:
            continue  # **splat: assume the loader forwards everything
        for field in cls.fields:
            if field not in passed:
                findings.append(
                    finding_at(
                        serializer.path,
                        loader,
                        RULE_ID,
                        f"{cls.name}.{field} is never passed by "
                        f"{loader.name}(); a resumed run would restart "
                        "the field from its default and diverge",
                    )
                )
    return findings


class CheckpointCompletenessRule:
    """RL005: every checkpoint field round-trips through the serializer."""

    rule_id = RULE_ID
    name = "checkpoint-field-completeness"
    summary = (
        "every *Checkpoint dataclass field must be serialized by its "
        "*_to_dict and restored by its *_from_dict in repro.runs.checkpoint"
    )

    def check_project(
        self, modules: list[ModuleSource]
    ) -> Iterator[Finding]:
        serializer = next(
            (m for m in modules if m.module == SERIALIZER_MODULE), None
        )
        if serializer is None:
            return
        classes = collect_checkpoint_classes(
            [m for m in modules if m.module != SERIALIZER_MODULE]
        )
        yield from check_checkpoint_coverage(classes, serializer)
