"""RL001 — unseeded RNG in deterministic zones.

Every random draw in the search stack must come from an explicitly
seeded generator (``random.Random(derived_seed)``, threaded through as
an ``rng`` parameter — see :mod:`repro.runs.seeds` for how cell seeds
are derived). Two things break that:

* **module-level draws** — ``random.random()``, ``random.shuffle()``,
  ``np.random.randint()`` — which pull from a hidden, process-global
  generator whose state depends on import order, other callers, and
  (unseeded) OS entropy;
* **entropy-seeded constructors** — argless ``random.Random()``,
  ``np.random.default_rng()``, ``np.random.RandomState()`` — which are
  different on every run by design.

Either one silently destroys bit-identical resume/replay.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleSource
from ..findings import Finding, finding_at
from ..names import ModuleResolver

#: ``random`` module functions that act on the hidden global generator.
GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "uniform",
        "triangular",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "binomialvariate",
        "seed",
        "getstate",
        "setstate",
    }
)

#: ``numpy.random`` module functions that act on the legacy global
#: ``RandomState`` (the list is representative, not exhaustive — any
#: draw through ``numpy.random.<fn>()`` is a violation, so unknown
#: names are flagged too; only the sanctioned constructors pass).
_NUMPY_SANCTIONED = frozenset({"default_rng", "Generator", "RandomState",
                               "SeedSequence", "PCG64", "Philox", "MT19937",
                               "SFC64", "BitGenerator"})


class UnseededRngRule:
    """RL001: all randomness must flow from a seeded generator."""

    rule_id = "RL001"
    name = "unseeded-rng"
    summary = (
        "module-level random.*/np.random.* draws and entropy-seeded "
        "generator constructors are forbidden in deterministic zones"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        resolver = ModuleResolver(module.tree, module=module.module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = resolver.qualname(node)
            if qual is None:
                continue
            message = classify_unseeded(qual, node)
            if message is not None:
                yield finding_at(module.path, node, self.rule_id, message)


def classify_unseeded(qual: str, node: ast.Call) -> str | None:
    """Why a resolved call is an unseeded-entropy draw, or None.

    Shared with the taint engine, whose ``rng`` source detection is
    exactly this classification applied outside the deterministic zone.
    """
    argless = not node.args and not node.keywords
    if qual == "random.Random":
        if argless:
            return (
                "argless random.Random() seeds from OS entropy; pass "
                "a derived seed (see repro.runs.seeds.derive_seed)"
            )
        return None
    if qual == "random.SystemRandom":
        return (
            "random.SystemRandom draws OS entropy and cannot be "
            "seeded; use random.Random(derived_seed)"
        )
    if qual.startswith("random."):
        tail = qual[len("random."):]
        if tail in GLOBAL_RANDOM_FNS:
            return (
                f"{qual}() draws from the hidden process-global RNG; "
                "use a seeded random.Random instance threaded in as "
                "an rng parameter"
            )
        return None
    if qual.startswith("numpy.random."):
        tail = qual[len("numpy.random."):]
        if tail in _NUMPY_SANCTIONED:
            if argless:
                return (
                    f"argless {qual}() seeds from OS entropy; pass a "
                    "derived seed"
                )
            return None
        return (
            f"{qual}() draws from numpy's global RandomState; use a "
            "seeded numpy.random.Generator instance"
        )
    return None
