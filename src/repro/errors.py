"""Exception hierarchy for the Cocco reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Malformed computation graph (cycles, dangling edges, bad shapes)."""


class ShapeError(GraphError):
    """A layer's declared shapes are inconsistent with its inputs."""


class PartitionError(ReproError):
    """A partition scheme violates precedence or connectivity rules."""


class TilingError(ReproError):
    """The consumption-centric tiling flow could not be derived."""


class CapacityError(ReproError):
    """A subgraph does not fit the available on-chip buffer capacity."""


class AllocationError(ReproError):
    """The buffer region manager could not allocate a requested region."""


class ConfigError(ReproError):
    """Invalid hardware or search configuration."""


class SearchError(ReproError):
    """An optimization algorithm failed to produce a valid result."""
