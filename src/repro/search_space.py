"""Memory-capacity search space for design-space exploration (Sec 5.3).

The paper explores global buffers from 128 KB to 2048 KB in 64 KB steps,
weight buffers from 144 KB to 2304 KB in 72 KB steps, and shared buffers
from 128 KB to 3072 KB in 64 KB steps. A :class:`CapacitySpace` owns the
candidate lists and implements the sampling, rounding, averaging
(crossover), and Gaussian perturbation (mutation-DSE) primitives the
search algorithms need.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass

from .config import BufferMode, MemoryConfig
from .errors import ConfigError
from .units import kb


def _steps(start_kb: int, stop_kb: int, step_kb: int) -> tuple[int, ...]:
    return tuple(kb(v) for v in range(start_kb, stop_kb + 1, step_kb))


def _nearest(candidates: tuple[int, ...], value: float) -> int:
    """Candidate closest to ``value`` (ties round down)."""
    pos = bisect_left(candidates, value)
    if pos == 0:
        return candidates[0]
    if pos >= len(candidates):
        return candidates[-1]
    before, after = candidates[pos - 1], candidates[pos]
    return before if value - before <= after - value else after


def _gaussian_step(
    candidates: tuple[int, ...], current: int, rng: random.Random, sigma_steps: float
) -> int:
    """Resample around ``current``: normal in candidate-index space."""
    index = candidates.index(_nearest(candidates, current))
    jump = int(round(rng.gauss(0.0, sigma_steps)))
    new_index = min(len(candidates) - 1, max(0, index + jump))
    return candidates[new_index]


@dataclass(frozen=True)
class CapacitySpace:
    """Candidate capacities for one buffer mode."""

    mode: BufferMode
    global_candidates: tuple[int, ...] = ()
    weight_candidates: tuple[int, ...] = ()
    shared_candidates: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.mode is BufferMode.SEPARATE:
            if not self.global_candidates or not self.weight_candidates:
                raise ConfigError("separate space needs global and weight candidates")
        elif not self.shared_candidates:
            raise ConfigError("shared space needs shared candidates")

    # ------------------------------------------------------------------
    @staticmethod
    def paper_separate() -> "CapacitySpace":
        """The separate-buffer ranges of Sec 5.3.1."""
        return CapacitySpace(
            mode=BufferMode.SEPARATE,
            global_candidates=_steps(128, 2048, 64),
            weight_candidates=_steps(144, 2304, 72),
        )

    @staticmethod
    def paper_shared() -> "CapacitySpace":
        """The shared-buffer range of Sec 5.3.1."""
        return CapacitySpace(
            mode=BufferMode.SHARED,
            shared_candidates=_steps(128, 3072, 64),
        )

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> MemoryConfig:
        """Uniform random configuration (GA initialization, RS)."""
        if self.mode is BufferMode.SEPARATE:
            return MemoryConfig.separate(
                rng.choice(self.global_candidates),
                rng.choice(self.weight_candidates),
            )
        return MemoryConfig.shared(rng.choice(self.shared_candidates))

    def round(self, memory: MemoryConfig) -> MemoryConfig:
        """Snap an arbitrary configuration onto the candidate grid."""
        if self.mode is BufferMode.SEPARATE:
            return MemoryConfig.separate(
                _nearest(self.global_candidates, memory.global_buffer_bytes),
                _nearest(self.weight_candidates, memory.weight_buffer_bytes),
            )
        return MemoryConfig.shared(
            _nearest(self.shared_candidates, memory.shared_buffer_bytes)
        )

    def average(self, a: MemoryConfig, b: MemoryConfig) -> MemoryConfig:
        """Crossover rule: average the parents, round to the grid."""
        if self.mode is BufferMode.SEPARATE:
            return MemoryConfig.separate(
                _nearest(
                    self.global_candidates,
                    (a.global_buffer_bytes + b.global_buffer_bytes) / 2,
                ),
                _nearest(
                    self.weight_candidates,
                    (a.weight_buffer_bytes + b.weight_buffer_bytes) / 2,
                ),
            )
        return MemoryConfig.shared(
            _nearest(
                self.shared_candidates,
                (a.shared_buffer_bytes + b.shared_buffer_bytes) / 2,
            )
        )

    def perturb(
        self, memory: MemoryConfig, rng: random.Random, sigma_steps: float = 3.0
    ) -> MemoryConfig:
        """mutation-DSE: Gaussian step on the candidate grid (Sec 4.4.3)."""
        if self.mode is BufferMode.SEPARATE:
            return MemoryConfig.separate(
                _gaussian_step(
                    self.global_candidates, memory.global_buffer_bytes, rng, sigma_steps
                ),
                _gaussian_step(
                    self.weight_candidates, memory.weight_buffer_bytes, rng, sigma_steps
                ),
            )
        return MemoryConfig.shared(
            _gaussian_step(
                self.shared_candidates, memory.shared_buffer_bytes, rng, sigma_steps
            )
        )

    def grid(self, stride: int = 4, descending: bool = True) -> list[MemoryConfig]:
        """Coarse deterministic enumeration for grid search (GS).

        ``stride`` subsamples every ``stride``-th candidate; the paper's GS
        walks from large to small capacity.
        """
        if self.mode is BufferMode.SEPARATE:
            glb = self.global_candidates[::stride]
            wgt = self.weight_candidates[::stride]
            configs = [
                MemoryConfig.separate(g, w) for g in glb for w in wgt
            ]
            configs.sort(key=lambda m: m.total_bytes, reverse=descending)
            return configs
        shared = self.shared_candidates[::stride]
        configs = [MemoryConfig.shared(s) for s in shared]
        configs.sort(key=lambda m: m.total_bytes, reverse=descending)
        return configs

    # ------------------------------------------------------------------
    def fixed_preset(self, size: str) -> MemoryConfig:
        """The paper's fixed-hardware presets: small / medium / large."""
        presets = {"small": 0.25, "medium": 0.5, "large": 1.0}
        if size not in presets:
            raise ConfigError(f"unknown preset {size!r}; use small/medium/large")
        if self.mode is BufferMode.SEPARATE:
            return MemoryConfig.separate(
                kb({"small": 512, "medium": 1024, "large": 2048}[size]),
                kb({"small": 576, "medium": 1152, "large": 2304}[size]),
            )
        return MemoryConfig.shared(
            kb({"small": 576, "medium": 1152, "large": 2304}[size])
        )
