"""Unit helpers and formatting used throughout the library.

All internal accounting uses base units: bytes, picojoules, cycles, and
bytes-per-second. These helpers convert to and from the human-facing units
used in the paper's tables (KB, MB, mJ, ms, GB/s) and format values for the
experiment reports.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

PJ_PER_MJ = 1e9
PJ_PER_UJ = 1e6


def kb(value: float) -> int:
    """Convert binary kilobytes to bytes (1 KB = 1024 bytes, as the paper)."""
    return int(value * KIB)


def mb(value: float) -> int:
    """Convert binary megabytes to bytes."""
    return int(value * MIB)


def to_kb(nbytes: float) -> float:
    """Convert bytes to binary kilobytes."""
    return nbytes / KIB


def to_mb(nbytes: float) -> float:
    """Convert bytes to binary megabytes."""
    return nbytes / MIB


def mj_from_pj(picojoules: float) -> float:
    """Convert picojoules to millijoules."""
    return picojoules / PJ_PER_MJ


def ms_from_cycles(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` to milliseconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz * 1e3


def gbps(value: float) -> float:
    """Convert gigabytes-per-second to bytes-per-second."""
    return value * 1e9


def to_gbps(bytes_per_second: float) -> float:
    """Convert bytes-per-second to gigabytes-per-second."""
    return bytes_per_second / 1e9


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, matching the paper's KB/MB style."""
    if nbytes >= MIB:
        return f"{nbytes / MIB:.2f}MB"
    if nbytes >= KIB:
        return f"{nbytes / KIB:.0f}KB"
    return f"{nbytes:.0f}B"


def fmt_energy(picojoules: float) -> str:
    """Human-readable energy (mJ for large values, uJ below)."""
    if picojoules >= PJ_PER_MJ / 100:
        return f"{picojoules / PJ_PER_MJ:.2f}mJ"
    return f"{picojoules / PJ_PER_UJ:.2f}uJ"


def fmt_sci(value: float) -> str:
    """Scientific notation in the paper's ``1.04E7`` style."""
    if value == 0:
        return "0.00E0"
    from math import floor, log10

    exponent = floor(log10(abs(value)))
    mantissa = value / 10**exponent
    return f"{mantissa:.2f}E{exponent}"
