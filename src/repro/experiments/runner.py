"""Command-line runner for the experiment suite.

Usage::

    python -m repro.experiments.runner fig3 [--scale quick|default|full]
    python -m repro.experiments.runner all --scale quick

Each experiment prints the table it reproduces; ``all`` runs the full
evaluation section in order.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    fig1_extremes,
    fig2_survey,
    stability,
    fig3_fusion,
    fig11_partition,
    fig12_convergence,
    fig13_distribution,
    fig14_alpha,
    table1_separate,
    table2_shared,
    table3_multicore,
)
from .common import DEFAULT_SCALE, SCALES

EXPERIMENTS = {
    "fig1": fig1_extremes,
    "fig2": fig2_survey,
    "fig3": fig3_fusion,
    "fig11": fig11_partition,
    "table1": table1_separate,
    "table2": table2_shared,
    "fig12": fig12_convergence,
    "fig13": fig13_distribution,
    "fig14": fig14_alpha,
    "table3": table3_multicore,
    "stability": stability,
}

#: Experiments whose ``run`` accepts a scale profile.
_SCALED = ("fig1", "fig11", "table1", "table2", "fig12", "fig13",
           "fig14", "table3", "stability")


def run_experiment(name: str, scale_name: str) -> str:
    """Run one experiment and return its rendered table."""
    module = EXPERIMENTS[name]
    scale = SCALES.get(scale_name, DEFAULT_SCALE)
    if name in _SCALED:
        result = module.run(scale=scale)
    else:
        result = module.run()
    return result.to_text()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="search budget profile",
    )
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(run_experiment(name, args.scale))
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
