"""Command-line runner for the experiment suite.

Usage::

    python -m repro.experiments.runner fig3 [--scale quick|default|full]
    python -m repro.experiments.runner all --scale quick

Each experiment prints the table it reproduces; ``all`` runs the full
evaluation section in order.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from . import (
    fig1_extremes,
    fig2_survey,
    stability,
    fig3_fusion,
    fig11_partition,
    fig12_convergence,
    fig13_distribution,
    fig14_alpha,
    table1_separate,
    table2_shared,
    table3_multicore,
)
from .common import DEFAULT_SCALE, SCALES

EXPERIMENTS = {
    "fig1": fig1_extremes,
    "fig2": fig2_survey,
    "fig3": fig3_fusion,
    "fig11": fig11_partition,
    "table1": table1_separate,
    "table2": table2_shared,
    "fig12": fig12_convergence,
    "fig13": fig13_distribution,
    "fig14": fig14_alpha,
    "table3": table3_multicore,
    "stability": stability,
}

#: Experiments whose ``run`` accepts a scale profile.
_SCALED = ("fig1", "fig11", "table1", "table2", "fig12", "fig13",
           "fig14", "table3", "stability")


def experiment_result(name: str, scale, workers: int | None = None):
    """Run one experiment and return its :class:`ExperimentResult`.

    ``workers`` (when given) fans population evaluation out to that many
    worker processes inside every search loop the experiment runs; the
    tables are identical for any value (evaluation is pure per genome).
    When ``None``, ``scale.workers`` is respected as-is.
    """
    module = EXPERIMENTS[name]
    if workers is not None:
        scale = replace(scale, workers=workers)
    if name in _SCALED:
        return module.run(scale=scale)
    return module.run()


def run_experiment(name: str, scale_name: str, workers: int | None = None) -> str:
    """Run one experiment and return its rendered table."""
    scale = SCALES.get(scale_name, DEFAULT_SCALE)
    return experiment_result(name, scale, workers=workers).to_text()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="search budget profile",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="evaluation worker processes inside the search loops "
             "(1 = serial; results are identical for any value)",
    )
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(run_experiment(name, args.scale, workers=args.workers))
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
