"""ASCII reporting for experiment results.

Every experiment returns an :class:`ExperimentResult` — headers plus rows
of cells — and the harness renders it as a fixed-width table that matches
the paper's row/column structure, so paper-vs-measured comparison is a
visual diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[_render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Structured output of one experiment run."""

    experiment: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def add_row(self, *cells: Any) -> None:
        """Append one row (arity-checked against the headers)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(tuple(cells))

    def to_text(self) -> str:
        """The rendered table plus any notes."""
        text = format_table(self.headers, self.rows, title=self.experiment)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text

    def __str__(self) -> str:
        return self.to_text()
