"""Table 1: hardware-mapping co-exploration with separate buffers.

Seven methods per model — fixed Buf(S/M/L), two-step RS+GA and GS+GA, and
the co-optimizing SA and Cocco — with energy as the metric and
``alpha = 0.002``. Following Sec 5.3.1, every non-fixed method first
selects a capacity, then a partition-only Cocco run under that capacity
produces the final reported cost (Formula 2).
"""

from __future__ import annotations

from ..config import MemoryConfig
from ..cost.evaluator import Evaluator
from ..cost.objective import Metric, co_opt_objective
from ..dse.cocco import cocco_co_optimize, cocco_partition_only
from ..dse.sa import sa_co_optimize
from ..dse.two_step import grid_search_ga, random_search_ga
from ..graphs.zoo import get_model
from ..search_space import CapacitySpace
from ..units import fmt_sci, to_kb
from .common import CORE_MODELS, DEFAULT_SCALE, Scale, paper_accelerator
from .reporting import ExperimentResult

ALPHA = 0.002


def _final_cost(
    evaluator: Evaluator,
    memory: MemoryConfig,
    scale: Scale,
    seed: int,
) -> float:
    """Sec 5.3.1 final step: partition-only Cocco at the chosen capacity."""
    refined = cocco_partition_only(
        evaluator,
        memory,
        metric=Metric.ENERGY,
        ga_config=scale.ga_config(seed=seed + 977),
    )
    return co_opt_objective(refined.partition_cost, memory, ALPHA, Metric.ENERGY)


def run_model(
    model_name: str,
    space: CapacitySpace,
    scale: Scale = DEFAULT_SCALE,
    seed: int = 0,
) -> list[tuple]:
    """All seven Table 1 rows for one model."""
    graph = get_model(model_name)
    accel = paper_accelerator()
    evaluator = Evaluator(graph, accel)
    rows: list[tuple] = []

    def describe(memory: MemoryConfig) -> tuple:
        if memory.mode.value == "shared":
            return (f"{to_kb(memory.shared_buffer_bytes):.0f}KB", "-")
        return (
            f"{to_kb(memory.global_buffer_bytes):.0f}KB",
            f"{to_kb(memory.weight_buffer_bytes):.0f}KB",
        )

    for preset in ("small", "medium", "large"):
        memory = space.fixed_preset(preset)
        cost = _final_cost(evaluator, memory, scale, seed)
        rows.append(
            (model_name, f"Buf({preset[0].upper()})", *describe(memory), fmt_sci(cost))
        )

    rs = random_search_ga(
        evaluator,
        space,
        num_candidates=scale.rs_candidates,
        metric=Metric.ENERGY,
        alpha=ALPHA,
        ga_config=scale.ga_config(seed=seed + 1),
        seed=seed + 1,
    )
    rows.append(
        (
            model_name,
            "RS+GA",
            *describe(rs.memory),
            fmt_sci(_final_cost(evaluator, rs.memory, scale, seed + 1)),
        )
    )

    gs = grid_search_ga(
        evaluator,
        space,
        stride=scale.gs_stride,
        max_candidates=scale.gs_max_candidates,
        metric=Metric.ENERGY,
        alpha=ALPHA,
        ga_config=scale.ga_config(seed=seed + 2),
    )
    rows.append(
        (
            model_name,
            "GS+GA",
            *describe(gs.memory),
            fmt_sci(_final_cost(evaluator, gs.memory, scale, seed + 2)),
        )
    )

    sa = sa_co_optimize(
        evaluator,
        space,
        metric=Metric.ENERGY,
        alpha=ALPHA,
        sa_config=scale.co_opt_sa_config(seed=seed + 3),
    )
    rows.append(
        (
            model_name,
            "SA",
            *describe(sa.memory),
            fmt_sci(_final_cost(evaluator, sa.memory, scale, seed + 3)),
        )
    )

    cocco = cocco_co_optimize(
        evaluator,
        space,
        metric=Metric.ENERGY,
        alpha=ALPHA,
        ga_config=scale.co_opt_ga_config(seed=seed + 4),
        refine=False,
    )
    rows.append(
        (
            model_name,
            "Cocco",
            *describe(cocco.memory),
            fmt_sci(_final_cost(evaluator, cocco.memory, scale, seed + 4)),
        )
    )
    return rows


def run(
    models: tuple[str, ...] = CORE_MODELS,
    scale: Scale = DEFAULT_SCALE,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Table 1 for the requested models."""
    result = ExperimentResult(
        experiment="Table 1: co-exploration, separate buffers (alpha=0.002, M=energy)",
        headers=("model", "method", "Size(A)", "Size(W)", "Cost"),
    )
    space = CapacitySpace.paper_separate()
    for model_name in models:
        for row in run_model(model_name, space, scale, seed):
            result.add_row(*row)
    result.notes.append(
        "paper: Cocco achieves 1.89%-50.33% lower cost than the baselines; "
        "two-step generally trails co-optimization"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
