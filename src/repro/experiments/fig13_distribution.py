"""Figure 13: how the sample distribution drifts during optimization.

Cocco's co-optimization run records every sample; the samples are bucketed
into ten equal groups by sample index, and per group we report the
centroid of (total buffer size, energy) plus the iso-cost intercept
``BUF + alpha * E``. The paper's observation: the distribution moves
toward a lower intercept and becomes more concentrated in later
generations.
"""

from __future__ import annotations

from dataclasses import replace
from statistics import pstdev

from ..cost.evaluator import Evaluator
from ..cost.objective import Metric
from ..dse.cocco import cocco_co_optimize
from ..graphs.zoo import get_model
from ..search_space import CapacitySpace
from ..units import to_mb
from .common import CORE_MODELS, DEFAULT_SCALE, Scale, paper_accelerator
from .reporting import ExperimentResult

ALPHA = 0.002
NUM_GROUPS = 10


def run(
    models: tuple[str, ...] = CORE_MODELS,
    scale: Scale = DEFAULT_SCALE,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce the Fig 13 sample-distribution statistics."""
    result = ExperimentResult(
        experiment="Figure 13: sample distribution over optimization (alpha=0.002)",
        headers=(
            "model",
            "group",
            "samples",
            "mean_buf_MB",
            "mean_energy_mJ",
            "intercept",
            "cost_std",
        ),
    )
    space = CapacitySpace.paper_shared()
    for model_name in models:
        graph = get_model(model_name)
        evaluator = Evaluator(graph, paper_accelerator())
        config = replace(scale.co_opt_ga_config(seed=seed), record_samples=True)
        outcome = cocco_co_optimize(
            evaluator,
            space,
            metric=Metric.ENERGY,
            alpha=ALPHA,
            ga_config=config,
            refine=False,
        )
        samples = [s for s in outcome.samples if s.cost != float("inf")]
        if not samples:
            continue
        group_size = max(1, len(samples) // NUM_GROUPS)
        for group in range(NUM_GROUPS):
            chunk = samples[group * group_size : (group + 1) * group_size]
            if not chunk:
                break
            mean_buf = sum(s.total_buffer_bytes for s in chunk) / len(chunk)
            mean_cost = sum(s.cost for s in chunk) / len(chunk)
            # The sample cost is Formula 2 (the iso-cost intercept); the
            # energy coordinate of the scatter is recovered from it.
            mean_energy_mj = (mean_cost - mean_buf) / ALPHA / 1e9
            result.add_row(
                model_name,
                group,
                len(chunk),
                round(to_mb(mean_buf), 3),
                round(mean_energy_mj, 3),
                f"{mean_cost:.3e}",
                f"{pstdev([s.cost for s in chunk]):.2e}" if len(chunk) > 1 else "0",
            )
        result.extra[model_name] = samples
    result.notes.append(
        "paper: later groups sit on lower iso-cost intercepts and are more "
        "centralized (smaller spread)"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
