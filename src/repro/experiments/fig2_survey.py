"""Figure 2: the industrial-NPU survey motivating the memory trade-off.

The paper surveys sixteen commercial accelerators — nine training, seven
inference parts — plotting peak performance against on-chip memory
capacity (left panel) and tabulating the SRAM share of die area (right
panel). Three observations drive the whole work: SRAM occupies 4-79% of
NPU silicon, the performance return on capacity diminishes, and inference
designs saturate at a finite "large-enough" capacity (Hanguang runs
DDR-less from 394 MB of SRAM).

The survey data is transcribed from the paper's Figure 2; the analysis —
per-segment capacity/performance correlation and the diminishing-returns
knee — is recomputed here so the motivation figure regenerates like every
evaluation figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from .reporting import ExperimentResult


@dataclass(frozen=True)
class SurveyedChip:
    """One accelerator of the paper's Figure 2 survey."""

    name: str
    segment: str  # "training" or "inference"
    performance_tflops: float
    memory_mb: float
    sram_area_percent: float


#: Transcribed from Fig 2 (performance/capacity read off the scatter; the
#: SRAM area ratios from the right-hand table).
SURVEY: tuple[SurveyedChip, ...] = (
    SurveyedChip("T4", "inference", 65.0, 10.0, 3.96),
    SurveyedChip("NVDLA", "inference", 2.0, 2.5, 13.79),
    SurveyedChip("TPUv4i", "inference", 138.0, 144.0, 14.70),
    SurveyedChip("FSD", "inference", 73.7, 64.0, 20.10),
    SurveyedChip("NNP-I", "inference", 92.0, 75.0, 27.46),
    SurveyedChip("Groq", "inference", 205.0, 220.0, 32.39),
    SurveyedChip("Hanguang", "inference", 256.0, 394.0, 36.86),
    SurveyedChip("Ascend910", "training", 256.0, 32.0, 8.60),
    SurveyedChip("TPUv2", "training", 46.0, 32.0, 10.92),
    SurveyedChip("Qualcomm-100", "training", 100.0, 144.0, 11.76),
    SurveyedChip("NNP-T", "training", 119.0, 60.0, 18.60),
    SurveyedChip("Wormhole", "training", 110.0, 120.0, 18.68),
    SurveyedChip("Grayskull", "training", 92.0, 120.0, 23.22),
    SurveyedChip("Dojo", "training", 362.0, 440.0, 28.01),
    SurveyedChip("IPUv2", "training", 250.0, 896.0, 40.65),
    SurveyedChip("IPUv1", "training", 125.0, 304.0, 78.80),
)


def marginal_performance(
    chips: tuple[SurveyedChip, ...],
) -> list[tuple[str, float]]:
    """TFLOPS gained per extra MB between capacity-sorted neighbors.

    The declining sequence is the "diminishing marginal benefit of memory
    capacity" the paper reads off the scatter.
    """
    ordered = sorted(chips, key=lambda c: c.memory_mb)
    gains: list[tuple[str, float]] = []
    for a, b in zip(ordered, ordered[1:]):
        span = b.memory_mb - a.memory_mb
        if span <= 0:
            continue
        gains.append((b.name, (b.performance_tflops - a.performance_tflops) / span))
    return gains


def run() -> ExperimentResult:
    """Regenerate the Fig 2 survey table and its observations."""
    result = ExperimentResult(
        experiment="Figure 2: industrial NPU survey (performance vs memory)",
        headers=("chip", "segment", "TFLOPS", "mem_MB", "SRAM_area_%",
                 "TFLOPS_per_MB"),
    )
    for chip in sorted(SURVEY, key=lambda c: c.memory_mb):
        result.add_row(
            chip.name,
            chip.segment,
            chip.performance_tflops,
            chip.memory_mb,
            chip.sram_area_percent,
            round(chip.performance_tflops / chip.memory_mb, 2),
        )

    areas = [c.sram_area_percent for c in SURVEY]
    result.notes.append(
        f"SRAM area share spans {min(areas):.1f}% to {max(areas):.1f}% of "
        "the die (paper: 4% to 79%)"
    )
    density = [c.performance_tflops / c.memory_mb for c in SURVEY]
    small = [d for c, d in zip(SURVEY, density) if c.memory_mb <= 64]
    large = [d for c, d in zip(SURVEY, density) if c.memory_mb > 200]
    result.notes.append(
        "diminishing returns: <=64MB chips average "
        f"{sum(small) / len(small):.2f} TFLOPS/MB, >200MB chips "
        f"{sum(large) / len(large):.2f} TFLOPS/MB"
    )
    result.extra["marginal_tflops_per_mb"] = marginal_performance(SURVEY)
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
