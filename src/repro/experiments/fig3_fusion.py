"""Figure 3: EMA and bandwidth for subgraphs fusing L = 1, 3, 5 layers.

The motivation study: fusing consecutive layers into subgraphs of target
size L on the fixed 2 TOPS platform (1 MB global + 1.125 MB weight
buffer) reduces external memory access by 42-75% and average bandwidth by
27-68%, with diminishing returns from L=3 to L=5.
"""

from __future__ import annotations

from ..cost.evaluator import Evaluator
from ..graphs.graph import ComputationGraph
from ..graphs.zoo import get_model
from ..partition.partition import Partition
from ..partition.validity import normalize_groups, split_infeasible
from ..units import to_gbps, to_mb
from .common import CORE_MODELS, paper_accelerator
from .reporting import ExperimentResult

FUSION_LEVELS = (1, 3, 5)


def chain_fusion_partition(
    graph: ComputationGraph, target_size: int
) -> Partition:
    """Fuse ``target_size`` layers at a time into connected subgraphs.

    This is the simple fusion policy of the motivation study — not a
    search. Layers are scheduled Kahn-style; each group grows by preferring
    ready layers adjacent to its current members so groups stay connected
    even on branchy graphs, closing when the target size is reached or no
    adjacent layer is ready.
    """
    compute = set(graph.compute_names)
    pending = {
        n: sum(1 for p in graph.predecessors(n) if p in compute)
        for n in graph.compute_names
    }
    ready = [n for n in graph.compute_names if pending[n] == 0]
    groups: list[set[str]] = []
    current: set[str] = set()

    def release(name: str) -> None:
        for succ in graph.successors(name):
            if succ in pending:
                pending[succ] -= 1
                if pending[succ] == 0:
                    ready.append(succ)

    while ready:
        pick = None
        if current:
            for candidate in ready:
                neighbors = (*graph.predecessors(candidate), *graph.successors(candidate))
                if any(n in current for n in neighbors):
                    pick = candidate
                    break
        if pick is None:
            if current:
                groups.append(current)
                current = set()
            pick = ready[0]
        ready.remove(pick)
        current.add(pick)
        del pending[pick]
        release(pick)
        if len(current) >= target_size:
            groups.append(current)
            current = set()
    if current:
        groups.append(current)
    return normalize_groups(graph, groups)


def run(
    models: tuple[str, ...] = CORE_MODELS,
    levels: tuple[int, ...] = FUSION_LEVELS,
) -> ExperimentResult:
    """Evaluate every model at every fusion level."""
    result = ExperimentResult(
        experiment="Figure 3: layer fusion (L = subgraph size)",
        headers=(
            "model",
            "L",
            "mean_size",
            "EMA_MB",
            "EMA_vs_L1_%",
            "avgBW_GBps",
            "BW_vs_L1_%",
        ),
    )
    accel = paper_accelerator()
    for model_name in models:
        graph = get_model(model_name)
        evaluator = Evaluator(graph, accel)

        def fits(members: frozenset[str]) -> bool:
            return evaluator.subgraph_cost(members).feasible

        base_ema = None
        base_bw = None
        for level in levels:
            partition = chain_fusion_partition(graph, level)
            partition = split_infeasible(partition, fits)
            cost = evaluator.evaluate(partition.subgraph_sets)
            mean_size = len(graph.compute_names) / partition.num_subgraphs
            ema_mb = to_mb(cost.ema_bytes)
            bw = to_gbps(cost.bandwidth.average_bytes_per_second)
            if base_ema is None:
                base_ema, base_bw = ema_mb, bw
            result.add_row(
                model_name,
                level,
                round(mean_size, 2),
                round(ema_mb, 1),
                round((ema_mb / base_ema - 1) * 100, 1),
                round(bw, 2),
                round((bw / base_bw - 1) * 100, 1),
            )
    result.notes.append(
        "paper: L=3 cuts EMA 42.3-74.7% and avg BW 26.8-67.8% vs L=1; "
        "L=5 adds only marginal gains"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
