"""Table 2: hardware-mapping co-exploration with a shared buffer.

The same seven methods as Table 1, but activations and weights share one
SRAM explored from 128 KB to 3072 KB. The paper's finding: the shared
design usually reaches lower cost than the separate one because free
capacity flows to whichever side needs it.
"""

from __future__ import annotations

from ..search_space import CapacitySpace
from .common import CORE_MODELS, DEFAULT_SCALE, Scale
from .reporting import ExperimentResult
from .table1_separate import run_model


def run(
    models: tuple[str, ...] = CORE_MODELS,
    scale: Scale = DEFAULT_SCALE,
    seed: int = 100,
) -> ExperimentResult:
    """Reproduce Table 2 for the requested models."""
    result = ExperimentResult(
        experiment="Table 2: co-exploration, shared buffer (alpha=0.002, M=energy)",
        headers=("model", "method", "Size", "W", "Cost"),
    )
    space = CapacitySpace.paper_shared()
    for model_name in models:
        for row in run_model(model_name, space, scale, seed):
            result.add_row(*row)
    result.notes.append(
        "paper: shared-buffer costs are mostly lower than the separate "
        "configuration; Cocco remains the best method"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
