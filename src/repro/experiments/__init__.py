"""Experiment harness: regenerates every table and figure of Sec 5."""

from .common import DEFAULT_SCALE, FULL_SCALE, QUICK_SCALE, Scale, paper_accelerator
from .reporting import ExperimentResult, format_table

__all__ = [
    "Scale",
    "QUICK_SCALE",
    "DEFAULT_SCALE",
    "FULL_SCALE",
    "paper_accelerator",
    "ExperimentResult",
    "format_table",
]
