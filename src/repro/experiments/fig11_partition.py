"""Figure 11: graph-partition quality across eight models (EMA-opt).

Compares Halide's greedy grouping, Irregular-NN's depth-ordered DP, Cocco,
and the exact enumeration on the fixed 1 MB + 1.125 MB platform, with EMA
as the optimization metric. EMA and average bandwidth are normalized to
the Halide baseline; the enumeration is expected to blow its state budget
on the four large irregular models (Transformer, GPT, RandWire-A/B).
"""

from __future__ import annotations

from ..cost.evaluator import Evaluator
from ..cost.objective import Metric
from ..errors import SearchError
from ..graphs.zoo import get_model
from ..partition.dp import dp_partition
from ..partition.enumeration import enumerate_partition
from ..partition.greedy import greedy_partition
from ..dse.cocco import cocco_partition_only
from ..units import to_gbps, to_mb
from .common import DEFAULT_SCALE, FIG11_MODELS, Scale, paper_accelerator
from .reporting import ExperimentResult


def _ema_cost_fn(evaluator: Evaluator):
    def cost_fn(members: frozenset[str]) -> float:
        cost = evaluator.subgraph_cost(members)
        return cost.ema_bytes if cost.feasible else float("inf")

    return cost_fn


def run(
    models: tuple[str, ...] = FIG11_MODELS,
    scale: Scale = DEFAULT_SCALE,
    seed: int = 0,
) -> ExperimentResult:
    """Run all four partitioners on every model."""
    result = ExperimentResult(
        experiment="Figure 11: graph partition, EMA-opt (normalized to Halide)",
        headers=(
            "model",
            "method",
            "EMA_MB",
            "EMA_norm",
            "avgBW_GBps",
            "BW_norm",
            "subgraphs",
        ),
    )
    accel = paper_accelerator()
    for model_name in models:
        graph = get_model(model_name)
        evaluator = Evaluator(graph, accel)
        cost_fn = _ema_cost_fn(evaluator)

        partitions = {}
        partitions["Halide(Greedy)"] = greedy_partition(graph, cost_fn)
        partitions["Irregular-NN(DP)"] = dp_partition(graph, cost_fn)
        ga = cocco_partition_only(
            evaluator,
            accel.memory,
            metric=Metric.EMA,
            ga_config=scale.ga_config(seed=seed),
            # Flexible initialization (Sec 4.3): warm-start from the
            # baselines and let the GA fine-tune them.
            seed_partitions=(
                partitions["Halide(Greedy)"],
                partitions["Irregular-NN(DP)"],
            ),
        )
        partitions["Cocco"] = ga.best_genome.partition

        capacity = accel.memory.activation_capacity

        def prune_fn(members: frozenset[str]) -> bool:
            return evaluator.min_footprint(members) > capacity * 1.25

        try:
            partitions["Enumeration"] = enumerate_partition(
                graph,
                cost_fn,
                max_subgraph_size=scale.enum_max_subgraph,
                max_states=scale.enum_max_states,
                prune_fn=prune_fn,
                max_candidates_per_state=scale.enum_max_states,
            )
        except SearchError:
            partitions["Enumeration"] = None

        baseline_ema = None
        baseline_bw = None
        for method, partition in partitions.items():
            if partition is None:
                result.add_row(model_name, method, "n/a", "n/a", "n/a", "n/a", "n/a")
                continue
            cost = evaluator.evaluate(partition.subgraph_sets)
            ema_mb = to_mb(cost.ema_bytes)
            bw = to_gbps(cost.bandwidth.average_bytes_per_second)
            if baseline_ema is None:
                baseline_ema, baseline_bw = ema_mb, bw
            result.add_row(
                model_name,
                method,
                round(ema_mb, 1),
                round(ema_mb / baseline_ema, 3),
                round(bw, 2),
                round(bw / baseline_bw, 3),
                partition.num_subgraphs,
            )
    result.notes.append(
        "paper: Cocco <= greedy and <= DP everywhere; Cocco matches the "
        "enumeration optimum on the first four models; the enumeration "
        "cannot finish on Transformer/GPT/RandWire"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
