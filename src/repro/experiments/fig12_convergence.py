"""Figure 12: convergence curves and sample efficiency.

Tracks best-cost-versus-samples for the two-step schemes (Buf(S/M/L)+GA,
RS+GA, GS+GA) and the co-optimizers (SA, Cocco) on ResNet50, GoogleNet,
and RandWire, then reports the Fig 12(d) table: samples needed to get
within 5% of Cocco's final cost. Cocco is expected to need the fewest.
"""

from __future__ import annotations

from ..cost.evaluator import Evaluator
from ..cost.objective import Metric
from ..dse.cocco import cocco_co_optimize
from ..dse.fixed import optimize_fixed
from ..dse.results import DSEResult
from ..dse.sa import sa_co_optimize
from ..dse.two_step import grid_search_ga, random_search_ga
from ..graphs.zoo import get_model
from ..search_space import CapacitySpace
from .common import DEFAULT_SCALE, Scale, paper_accelerator
from .reporting import ExperimentResult

ALPHA = 0.002
CONVERGENCE_MODELS = ("resnet50", "googlenet", "randwire_a")
THRESHOLD_FACTOR = 1.05


def run_methods(
    model_name: str, scale: Scale, seed: int
) -> dict[str, DSEResult]:
    """All Fig 12 methods on one model, with histories."""
    graph = get_model(model_name)
    evaluator = Evaluator(graph, paper_accelerator())
    space = CapacitySpace.paper_separate()
    methods: dict[str, DSEResult] = {}
    for preset in ("small", "medium", "large"):
        memory = space.fixed_preset(preset)
        methods[f"Buf({preset[0].upper()})+GA"] = optimize_fixed(
            evaluator,
            memory,
            metric=Metric.ENERGY,
            alpha=ALPHA,
            ga_config=scale.ga_config(seed=seed),
            method_name=f"Buf({preset[0].upper()})+GA",
        )
    methods["RS+GA"] = random_search_ga(
        evaluator,
        space,
        num_candidates=scale.rs_candidates,
        metric=Metric.ENERGY,
        alpha=ALPHA,
        ga_config=scale.ga_config(seed=seed + 1),
        seed=seed + 1,
    )
    methods["GS+GA"] = grid_search_ga(
        evaluator,
        space,
        stride=scale.gs_stride,
        max_candidates=scale.gs_max_candidates,
        metric=Metric.ENERGY,
        alpha=ALPHA,
        ga_config=scale.ga_config(seed=seed + 2),
    )
    methods["SA"] = sa_co_optimize(
        evaluator,
        space,
        metric=Metric.ENERGY,
        alpha=ALPHA,
        sa_config=scale.co_opt_sa_config(seed=seed + 3),
    )
    methods["Cocco"] = cocco_co_optimize(
        evaluator,
        space,
        metric=Metric.ENERGY,
        alpha=ALPHA,
        ga_config=scale.co_opt_ga_config(seed=seed + 4),
        refine=False,
    )
    return methods


def run(
    models: tuple[str, ...] = CONVERGENCE_MODELS,
    scale: Scale = DEFAULT_SCALE,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Fig 12: final costs plus the samples-to-1.05x table."""
    result = ExperimentResult(
        experiment="Figure 12: convergence and sample efficiency",
        headers=(
            "model",
            "method",
            "final_cost",
            "samples",
            "samples_to_1.05x_Cocco",
        ),
    )
    for model_name in models:
        methods = run_methods(model_name, scale, seed)
        threshold = methods["Cocco"].best_cost * THRESHOLD_FACTOR
        for name, outcome in methods.items():
            reached = outcome.samples_to_reach(threshold)
            result.add_row(
                model_name,
                name,
                f"{outcome.best_cost:.3e}",
                outcome.num_evaluations,
                reached if reached is not None else "never",
            )
        result.extra[model_name] = {
            name: outcome.history for name, outcome in methods.items()
        }
    result.notes.append(
        "paper Fig 12(d): Cocco reaches 1.05x of its final cost with the "
        "fewest samples (e.g. 3.5K on ResNet50 vs 9K-12.5K for baselines)"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
