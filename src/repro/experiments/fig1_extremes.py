"""Figure 1: the two extremes of the capacity-communication trade-off.

The paper's opening figure bounds external memory access between two
extremes: with no on-chip reuse at all, every operand streams per use
("Max EMA ~ 2 * #OPs"); with unlimited capacity, only compulsory traffic
remains ("Min EMA ~ #Wgt + #In + #Out"). Between them, each capacity
point buffers a larger subgraph scope (single layer -> a few nodes ->
the whole graph).

This experiment regenerates that curve with the real machinery: at each
capacity the partition-only optimizer finds the best subgraph scheme, and
the resulting EMA is placed against both analytic bounds. Two shape
claims hold by construction and are asserted downstream: EMA is
monotonically non-increasing in capacity, and it converges to the
compulsory bound once the buffer covers the model's working set.
"""

from __future__ import annotations

from ..cost.evaluator import Evaluator
from ..cost.objective import Metric
from ..dse.cocco import cocco_partition_only
from ..graphs.graph import ComputationGraph
from ..graphs.zoo import get_model
from ..partition.greedy import greedy_partition
from ..config import MemoryConfig
from ..units import kb, to_mb
from .common import DEFAULT_SCALE, Scale, paper_accelerator
from .reporting import ExperimentResult

#: Shared-buffer capacities swept, in KB (small -> large, Fig 1's axis).
CAPACITIES_KB = (192, 384, 768, 1536, 3072, 6144, 12288)


def compulsory_ema_bytes(graph: ComputationGraph) -> int:
    """The Fig 1 lower bound: weights + model inputs + model outputs."""
    return (
        graph.total_weight_bytes
        + graph.model_input_bytes()
        + graph.model_output_bytes()
    )


def streaming_ema_bytes(graph: ComputationGraph) -> int:
    """The Fig 1 upper bound: every operand streams per operation.

    Layer-by-layer execution with no activation or weight residency moves
    each layer's inputs and outputs (and its weights) through DRAM once
    per layer — the "no Wgt&Act buffer" corner of Fig 1.
    """
    total = graph.model_input_bytes()
    for name in graph.compute_names:
        spec = graph.layer(name)
        total += spec.weight_bytes
        total += sum(
            graph.layer(p).output_bytes() for p in graph.predecessors(name)
        )
        total += spec.output_bytes()
    return total


def run(
    models: tuple[str, ...] = ("googlenet", "mobilenet_v2"),
    capacities_kb: tuple[int, ...] = CAPACITIES_KB,
    scale: Scale = DEFAULT_SCALE,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep shared-buffer capacity and record the optimized EMA."""
    result = ExperimentResult(
        experiment="Figure 1: EMA between the streaming and compulsory "
                    "extremes vs on-chip capacity",
        headers=("model", "capacity_KB", "EMA_MB", "of_min", "subgraphs"),
    )
    for model_name in models:
        graph = get_model(model_name)
        floor = compulsory_ema_bytes(graph)
        ceiling = streaming_ema_bytes(graph)
        for capacity_kb in capacities_kb:
            memory = MemoryConfig.shared(kb(capacity_kb))
            evaluator = Evaluator(graph, paper_accelerator(memory=memory))

            def cost_fn(members: frozenset[str]) -> float:
                cost = evaluator.subgraph_cost(members)
                return cost.ema_bytes if cost.feasible else float("inf")

            seeds = (greedy_partition(graph, cost_fn),)
            best = cocco_partition_only(
                evaluator,
                memory,
                metric=Metric.EMA,
                ga_config=scale.ga_config(seed=seed),
                seed_partitions=seeds,
            )
            ema = best.partition_cost.ema_bytes
            result.add_row(
                model_name,
                capacity_kb,
                round(to_mb(ema), 2),
                round(ema / floor, 3),
                best.partition_cost.num_subgraphs,
            )
        result.extra[model_name] = {
            "compulsory_mb": to_mb(floor),
            "streaming_mb": to_mb(ceiling),
        }
        result.notes.append(
            f"{model_name}: compulsory bound {to_mb(floor):.1f} MB, "
            f"streaming bound {to_mb(ceiling):.1f} MB"
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
