"""Seed-stability study: Cocco versus simulated annealing (Sec 4.2.4).

The paper justifies the genetic core with a stability argument: "SA is an
alternative optimization method for our framework with compatible
operators, but it is not stable as the genetic algorithm in a range of
benchmarks." This experiment quantifies that claim — both co-optimizers
run under several seeds at the same sample budget, and the spread
(standard deviation and worst-case regret over the per-model best cost)
is reported per method.
"""

from __future__ import annotations

import statistics

from ..cost.evaluator import Evaluator
from ..cost.objective import Metric
from ..dse.cocco import cocco_co_optimize
from ..dse.sa import sa_co_optimize
from ..graphs.zoo import get_model
from ..search_space import CapacitySpace
from .common import DEFAULT_SCALE, Scale, paper_accelerator
from .reporting import ExperimentResult

#: Models of the stability comparison (the Fig 12 convergence set).
STABILITY_MODELS = ("resnet50", "googlenet", "randwire_a")


def run(
    models: tuple[str, ...] = STABILITY_MODELS,
    scale: Scale = DEFAULT_SCALE,
    num_seeds: int = 5,
    alpha: float = 0.002,
) -> ExperimentResult:
    """Run both co-optimizers across seeds and summarize the spread."""
    result = ExperimentResult(
        experiment="Stability: Cocco vs SA across seeds "
                    f"({num_seeds} seeds, shared buffer, alpha={alpha})",
        headers=("model", "method", "mean_cost", "std_cost", "best",
                 "worst", "spread_%"),
    )
    space = CapacitySpace.paper_shared()
    for model_name in models:
        graph = get_model(model_name)
        evaluator = Evaluator(graph, paper_accelerator())
        runs: dict[str, list[float]] = {"Cocco": [], "SA": []}
        for seed in range(num_seeds):
            cocco = cocco_co_optimize(
                evaluator, space, metric=Metric.ENERGY, alpha=alpha,
                ga_config=scale.ga_config(seed=seed), refine=False,
            )
            runs["Cocco"].append(cocco.best_cost)
            sa = sa_co_optimize(
                evaluator, space, metric=Metric.ENERGY, alpha=alpha,
                sa_config=scale.sa_config(seed=seed),
            )
            runs["SA"].append(sa.best_cost)
        for method, costs in runs.items():
            mean = statistics.fmean(costs)
            std = statistics.pstdev(costs)
            spread = (max(costs) - min(costs)) / min(costs) * 100
            result.add_row(
                model_name,
                method,
                f"{mean:.3e}",
                f"{std:.3e}",
                f"{min(costs):.3e}",
                f"{max(costs):.3e}",
                round(spread, 1),
            )
        result.extra[model_name] = runs
    result.notes.append(
        "paper claim (Sec 4.2.4): SA 'is not stable as the genetic "
        "algorithm in a range of benchmarks' - compare the std/spread "
        "columns per model"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
