"""Table 3: multi-core and batch evaluation (shared buffer, co-opt).

For every (cores, batch) in {1, 2, 4} x {1, 2, 8}, co-optimize the
per-core shared buffer and the partition with energy as the metric, then
report energy (mJ), latency (ms), and the chosen per-core buffer size.
The paper's shape: energy usually rises from one to two cores (crossbar
overhead), per-core capacity falls as cores grow, and batch latency
scales sub-linearly thanks to inter-sample weight reuse.
"""

from __future__ import annotations

from ..cost.objective import Metric
from ..dse.cocco import cocco_co_optimize
from ..graphs.zoo import get_model
from ..multicore.scheduler import MultiCoreEvaluator
from ..search_space import CapacitySpace
from ..units import ms_from_cycles, to_kb
from .common import CORE_MODELS, DEFAULT_SCALE, Scale, derive_seed, paper_accelerator
from .reporting import ExperimentResult

ALPHA = 0.002
CORE_COUNTS = (1, 2, 4)
BATCH_SIZES = (1, 2, 8)


def run(
    models: tuple[str, ...] = CORE_MODELS,
    core_counts: tuple[int, ...] = CORE_COUNTS,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    scale: Scale = DEFAULT_SCALE,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Table 3 for the requested models."""
    result = ExperimentResult(
        experiment="Table 3: multi-core and batch (shared buffer, energy-capacity co-opt)",
        headers=("model", "cores", "batch", "energy_mJ", "latency_ms", "size_KB"),
    )
    space = CapacitySpace.paper_shared()
    for model_name in models:
        graph = get_model(model_name)
        for cores in core_counts:
            for batch in batch_sizes:
                accel = paper_accelerator(num_cores=cores)
                evaluator = MultiCoreEvaluator(graph, accel, batch=batch)
                # Stable per-cell stream: (campaign seed, model, cores,
                # batch). The old ``seed + cores*10 + batch`` collided
                # across cells and shifted when the matrix changed.
                cell_seed = derive_seed(seed, "table3", model_name, cores, batch)
                outcome = cocco_co_optimize(
                    evaluator,
                    space,
                    metric=Metric.ENERGY,
                    alpha=ALPHA,
                    ga_config=scale.ga_config(seed=cell_seed),
                    refine=False,
                )
                cost = outcome.partition_cost
                result.add_row(
                    model_name,
                    cores,
                    batch,
                    round(cost.energy_pj / 1e9, 2),
                    round(ms_from_cycles(cost.latency_cycles, accel.frequency_hz), 2),
                    f"{to_kb(outcome.memory.shared_buffer_bytes):.0f}",
                )
    result.notes.append(
        "paper: energy rises 1->2 cores (crossbar), per-core size falls "
        "with more cores, batch latency is sub-linear"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
