"""Shared experiment configuration.

The paper's searches draw up to 400,000 samples; a laptop-scale
reproduction keeps the same algorithms but bounds the budgets through a
:class:`Scale` profile. ``QUICK_SCALE`` backs the test suite and the
pytest benchmarks, ``DEFAULT_SCALE`` gives publication-shaped results in
minutes, ``FULL_SCALE`` approaches the paper's budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import AcceleratorConfig, MemoryConfig
from ..ga.annealing import SAConfig
from ..ga.engine import GAConfig
from ..ga.islands import IslandConfig
from ..runs.seeds import derive_seed
from ..units import kb

__all__ = [
    "CORE_MODELS",
    "FIG11_MODELS",
    "ENUMERABLE_MODELS",
    "Scale",
    "TINY_SCALE",
    "QUICK_SCALE",
    "DEFAULT_SCALE",
    "FULL_SCALE",
    "SCALES",
    "derive_seed",
    "paper_memory",
    "paper_accelerator",
]


#: The four models of Fig 3 / Tables 1-3 / Figs 13-14.
CORE_MODELS = ("resnet50", "googlenet", "randwire_a", "nasnet")

#: The eight models of Fig 11, in the paper's order.
FIG11_MODELS = (
    "vgg16",
    "resnet50",
    "resnet152",
    "googlenet",
    "transformer",
    "gpt",
    "randwire_a",
    "randwire_b",
)

#: Models where the exact enumeration is expected to complete (Fig 11).
ENUMERABLE_MODELS = ("vgg16", "resnet50", "resnet152", "googlenet")


@dataclass(frozen=True)
class Scale:
    """Search-budget profile for the experiment harness."""

    name: str
    ga_population: int
    ga_generations: int
    sa_steps: int
    rs_candidates: int
    gs_stride: int
    gs_max_candidates: int
    enum_max_states: int
    enum_max_subgraph: int
    #: Evaluation worker processes for population-based searches (1 =
    #: serial). Results are identical for any value; only wall-clock
    #: changes. Override per run with ``replace(scale, workers=N)`` or
    #: the ``--workers`` CLI flag.
    workers: int = 1
    #: Island-model shape: sub-population count, migration epochs, and
    #: generations per island per epoch. The total sample budget
    #: (``islands * epochs * epoch_generations * ga_population``) stays
    #: comparable to the co-opt GA's so suite cells are comparable.
    island_count: int = 2
    island_epochs: int = 2
    island_epoch_generations: int = 2

    def ga_config(self, seed: int = 0, **overrides) -> GAConfig:
        """A :class:`GAConfig` at this scale."""
        config = GAConfig(
            population_size=self.ga_population,
            generations=self.ga_generations,
            seed=seed,
            workers=self.workers,
        )
        return replace(config, **overrides) if overrides else config

    def sa_config(self, seed: int = 0, **overrides) -> SAConfig:
        """An :class:`SAConfig` at this scale."""
        config = SAConfig(steps=self.sa_steps, seed=seed)
        return replace(config, **overrides) if overrides else config

    def co_opt_ga_config(self, seed: int = 0, **overrides) -> GAConfig:
        """GA budget for the co-optimizing methods.

        The two-step schemes spend ``rs_candidates`` independent GA runs;
        the co-optimizers get the same *total* sample budget in one run
        (the paper draws the same 50K samples for every method).
        """
        config = GAConfig(
            population_size=self.ga_population,
            generations=self.ga_generations * self.rs_candidates,
            seed=seed,
            workers=self.workers,
        )
        return replace(config, **overrides) if overrides else config

    def islands_config(self, seed: int = 0, **base_overrides) -> IslandConfig:
        """An :class:`IslandConfig` at this scale.

        ``base_overrides`` land on the per-island :class:`GAConfig`
        (e.g. ``workers=N``); the island shape comes from the scale.
        """
        base = GAConfig(
            population_size=self.ga_population,
            generations=self.island_epoch_generations,
            seed=seed,
            workers=self.workers,
        )
        if base_overrides:
            base = replace(base, **base_overrides)
        return IslandConfig(
            base=base,
            num_islands=self.island_count,
            epochs=self.island_epochs,
            epoch_generations=self.island_epoch_generations,
            seed=seed,
        )

    def co_opt_sa_config(self, seed: int = 0, **overrides) -> SAConfig:
        """SA budget matched to the co-opt GA's total samples."""
        config = SAConfig(
            steps=self.ga_population * self.ga_generations * self.rs_candidates,
            seed=seed,
        )
        return replace(config, **overrides) if overrides else config


#: Smallest meaningful budget: CI smoke jobs and the suite tests use it
#: to exercise whole campaigns in seconds. Not a results-quality profile.
TINY_SCALE = Scale(
    name="tiny",
    ga_population=8,
    ga_generations=3,
    sa_steps=60,
    rs_candidates=2,
    gs_stride=16,
    gs_max_candidates=2,
    enum_max_states=5_000,
    enum_max_subgraph=8,
)

QUICK_SCALE = Scale(
    name="quick",
    ga_population=20,
    ga_generations=8,
    sa_steps=400,
    rs_candidates=3,
    gs_stride=12,
    gs_max_candidates=3,
    enum_max_states=20_000,
    enum_max_subgraph=16,
    island_count=2,
    island_epochs=2,
    island_epoch_generations=4,
)

DEFAULT_SCALE = Scale(
    name="default",
    ga_population=48,
    ga_generations=25,
    sa_steps=3_000,
    rs_candidates=6,
    gs_stride=8,
    gs_max_candidates=6,
    enum_max_states=60_000,
    enum_max_subgraph=32,
    island_count=4,
    island_epochs=5,
    island_epoch_generations=5,
)

FULL_SCALE = Scale(
    name="full",
    ga_population=120,
    ga_generations=80,
    sa_steps=20_000,
    rs_candidates=10,
    gs_stride=4,
    gs_max_candidates=10,
    enum_max_states=200_000,
    enum_max_subgraph=64,
    island_count=4,
    island_epochs=8,
    island_epoch_generations=10,
)

SCALES = {s.name: s for s in (TINY_SCALE, QUICK_SCALE, DEFAULT_SCALE, FULL_SCALE)}


def paper_memory() -> MemoryConfig:
    """The fixed platform of Fig 3 / Fig 11: 1 MB global + 1.125 MB weight."""
    return MemoryConfig.separate(kb(1024), kb(1152))


def paper_accelerator(
    memory: MemoryConfig | None = None, num_cores: int = 1
) -> AcceleratorConfig:
    """The 2 TOPS SIMBA-like core of Sec 5.1.2."""
    return AcceleratorConfig(
        memory=memory or paper_memory(), num_cores=num_cores
    )
