"""Figure 14: the alpha trade-off between energy and memory capacity.

Sweeping ``alpha`` from 5e-4 to 1e-2 in Formula 2: a larger alpha weights
the mapping cost more heavily, so the optimizer buys more capacity to cut
energy. Energies are normalized to the smallest alpha, as in the paper.
"""

from __future__ import annotations

from ..cost.evaluator import Evaluator
from ..cost.objective import Metric
from ..dse.cocco import cocco_co_optimize
from ..graphs.zoo import get_model
from ..search_space import CapacitySpace
from ..units import to_mb
from .common import CORE_MODELS, DEFAULT_SCALE, Scale, derive_seed, paper_accelerator
from .reporting import ExperimentResult

ALPHAS = (5e-4, 1e-3, 2e-3, 5e-3, 1e-2)


def run(
    models: tuple[str, ...] = CORE_MODELS,
    alphas: tuple[float, ...] = ALPHAS,
    scale: Scale = DEFAULT_SCALE,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce the Fig 14 sweep."""
    result = ExperimentResult(
        experiment="Figure 14: energy vs capacity across alpha (M=energy)",
        headers=(
            "model",
            "alpha",
            "capacity_MB",
            "energy_mJ",
            "energy_norm",
        ),
    )
    space = CapacitySpace.paper_shared()
    for model_name in models:
        graph = get_model(model_name)
        evaluator = Evaluator(graph, paper_accelerator())
        base_energy = None
        for alpha in alphas:
            # The cell seed depends only on (campaign seed, model, alpha):
            # adding or reordering alphas cannot shift any other cell's
            # random stream.
            cell_seed = derive_seed(seed, "fig14", model_name, alpha)
            outcome = cocco_co_optimize(
                evaluator,
                space,
                metric=Metric.ENERGY,
                alpha=alpha,
                ga_config=scale.co_opt_ga_config(seed=cell_seed),
                refine=False,
            )
            energy_mj = outcome.partition_cost.energy_pj / 1e9
            if base_energy is None:
                base_energy = energy_mj
            result.add_row(
                model_name,
                alpha,
                round(to_mb(outcome.memory.total_bytes), 3),
                round(energy_mj, 3),
                round(energy_mj / base_energy, 3),
            )
    result.notes.append(
        "paper: capacity grows and normalized energy falls as alpha grows; "
        "memory-intensive NasNet needs the largest capacity"
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
