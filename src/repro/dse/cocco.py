"""Cocco co-optimization: the paper's headline method (Sec 4.4, 5.3).

One genetic search explores partitions and memory capacities together
under Formula 2. The paper's protocol then freezes the recommended
capacity and runs a partition-only refinement to obtain the final cost
("we first perform the hardware-mapping co-exploration to determine the
suitable memory configuration ... and then solely execute the
partition-only Cocco", Sec 5.3.1); ``refine`` reproduces that second
stage.
"""

from __future__ import annotations

from typing import Sequence

from ..config import MemoryConfig
from ..cost.evaluator import Evaluator
from ..cost.objective import Metric, co_opt_objective
from ..ga.engine import GAConfig, GenerationHook, GeneticEngine
from ..ga.genome import Genome
from ..ga.problem import OptimizationProblem
from ..parallel.backend import EvaluationBackend
from ..partition.partition import Partition
from ..search_space import CapacitySpace
from .results import DSEResult


def cocco_partition_only(
    evaluator: Evaluator,
    memory: MemoryConfig,
    metric: Metric = Metric.EMA,
    ga_config: GAConfig | None = None,
    method_name: str = "Cocco",
    seed_partitions: Sequence[Partition] = (),
    backend: EvaluationBackend | None = None,
    on_generation: GenerationHook | None = None,
) -> DSEResult:
    """Partition-only Cocco (Formula 1) at a fixed memory configuration.

    ``seed_partitions`` warm-start the population — the paper's "flexible
    initialization" property (Sec 4.3): results of other optimization
    algorithms can initialize the GA, which then fine-tunes them.

    ``backend`` overrides the engine's own evaluation fan-out (which
    otherwise follows ``ga_config.workers``); the caller keeps ownership
    of an explicitly passed backend. ``on_generation`` streams the
    engine's per-generation checkpoints (see :meth:`GeneticEngine.run`).
    """
    problem = OptimizationProblem(
        evaluator=evaluator, metric=metric, alpha=None, fixed_memory=memory
    )
    seeds = [Genome(partition=p, memory=memory) for p in seed_partitions]
    result = GeneticEngine(problem, ga_config, backend=backend).run(
        seeds=seeds, on_generation=on_generation
    )
    _, partition_cost = problem.evaluate(result.best_genome)
    return DSEResult(
        method=method_name,
        best_genome=result.best_genome.with_memory(memory),
        best_cost=result.best_cost,
        partition_cost=partition_cost,
        num_evaluations=result.num_evaluations,
        history=result.history,
        samples=result.samples,
    )


def cocco_co_optimize(
    evaluator: Evaluator,
    space: CapacitySpace,
    metric: Metric = Metric.ENERGY,
    alpha: float = 0.002,
    ga_config: GAConfig | None = None,
    refine: bool = True,
    refine_config: GAConfig | None = None,
    backend: EvaluationBackend | None = None,
    on_generation: GenerationHook | None = None,
) -> DSEResult:
    """Joint partition + capacity search under Formula 2.

    Both the co-exploration run and the partition-only refinement share
    ``backend`` when one is passed (otherwise each engine builds its own
    from ``ga_config.workers``). ``on_generation`` streams the
    co-exploration engine's per-generation checkpoints (the refinement
    stage, being a separate engine run, is not streamed).
    """
    problem = OptimizationProblem(
        evaluator=evaluator, metric=metric, alpha=alpha, space=space
    )
    result = GeneticEngine(problem, ga_config, backend=backend).run(
        on_generation=on_generation
    )
    best_genome = result.best_genome
    total_evals = result.num_evaluations
    history = list(result.history)

    if refine:
        refinement = cocco_partition_only(
            evaluator,
            best_genome.memory,
            metric=metric,
            ga_config=refine_config or ga_config,
            backend=backend,
        )
        refined_total = co_opt_objective(
            refinement.partition_cost, best_genome.memory, alpha, metric
        )
        total_evals += refinement.num_evaluations
        if refined_total < result.best_cost:
            best_genome = refinement.best_genome
            history.append((total_evals, refined_total))
            result.best_cost = refined_total

    problem_final = OptimizationProblem(
        evaluator=evaluator, metric=metric, alpha=alpha, space=space
    )
    _, partition_cost = problem_final.evaluate(best_genome)
    return DSEResult(
        method="Cocco",
        best_genome=best_genome,
        best_cost=result.best_cost,
        partition_cost=partition_cost,
        num_evaluations=total_evals,
        history=history,
        samples=result.samples,
    )
