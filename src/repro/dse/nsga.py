"""NSGA-II multi-objective co-exploration (extension beyond the paper).

Formula 2 scalarizes the capacity/communication trade-off with a single
``alpha``; the paper's Fig 14 re-runs the whole search per alpha to sweep
the trade-off. NSGA-II (Deb et al., 2002) explores the two objectives —
total buffer capacity and the mapping metric (energy or EMA) — directly,
returning the entire non-dominated frontier from *one* run. Every
Formula 2 optimum for any alpha lies on that frontier, so the sweep
becomes a frontier read-off instead of a family of searches.

The genome encoding, crossover, mutation, and in-situ capacity repair are
shared with the scalarized Cocco GA; only selection changes, to the
classic fast-non-dominated-sort plus crowding-distance scheme.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..cost.objective import Metric
from ..cost.evaluator import Evaluator
from ..errors import SearchError
from ..ga.crossover import crossover
from ..ga.genome import Genome
from ..ga.mutation import merge_subgraph, modify_node, mutate_dse, split_subgraph
from ..ga.population import initialize_population
from ..ga.problem import OptimizationProblem
from ..obs import emit
from ..parallel.backend import EvaluationBackend, cached_map, resolve_backend
from ..parallel.tasks import ParetoCostTask
from ..search_space import CapacitySpace
from .pareto import ParetoPoint


@dataclass(frozen=True)
class MultiObjectivePoint:
    """One evaluated genome in (capacity, metric) objective space."""

    genome: Genome
    capacity_bytes: int
    metric_cost: float

    @property
    def objectives(self) -> tuple[float, float]:
        return (float(self.capacity_bytes), self.metric_cost)

    def dominates(self, other: "MultiObjectivePoint") -> bool:
        """Pareto dominance: no worse in both, strictly better in one."""
        a, b = self.objectives, other.objectives
        return a[0] <= b[0] and a[1] <= b[1] and a != b

    def formula2(self, alpha: float) -> float:
        """The scalarized Formula 2 value at ``alpha``."""
        return self.capacity_bytes + alpha * self.metric_cost


@dataclass
class NSGAConfig:
    """Hyper-parameters of the NSGA-II search."""

    population_size: int = 60
    generations: int = 30
    crossover_rate: float = 0.6
    mutation_rate: float = 0.9
    dse_mutation_rate: float = 0.5
    seed: int = 0
    #: Evaluation fan-out: 0/1 evaluates serially, N>1 uses a
    #: :class:`~repro.parallel.backend.ProcessPoolBackend` with N workers.
    workers: int = 1
    #: Genomes per parallel work unit (None: auto-chunked per batch).
    eval_chunk_size: int | None = None
    #: Incremental (delta) genome evaluation (see
    #: :class:`~repro.ga.engine.GAConfig.incremental`); metric costs are
    #: bit-identical with the flag on or off.
    incremental: bool = True
    #: Population batch pricing (see
    #: :class:`~repro.ga.engine.GAConfig.batch_pricing`); metric costs
    #: stay bit-identical.
    batch_pricing: bool = True

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise SearchError("NSGA-II needs a population of at least four")
        if self.generations < 1:
            raise SearchError("need at least one generation")
        if self.workers < 0:
            raise SearchError("workers must be non-negative")
        if self.eval_chunk_size is not None and self.eval_chunk_size < 1:
            raise SearchError("eval_chunk_size must be positive")


@dataclass
class NSGACheckpoint:
    """Complete NSGA-II state after one generation.

    Carries the current population (``points``), the deduplicated
    evaluation archive (needed so resumed runs count cache hits exactly
    like uninterrupted ones), the RNG state, the hypervolume reference
    corner, and the telemetry. ``generation`` is 0 right after the
    initial population is evaluated. Serialized to JSON by
    :mod:`repro.runs.checkpoint`.
    """

    generation: int
    rng_state: tuple
    evaluations: int
    reference: tuple[float, float]
    history: list[tuple[int, float]]
    points: list["MultiObjectivePoint"]
    archive: list["MultiObjectivePoint"]


#: Called after every evaluated generation with the search's checkpoint.
NSGAGenerationHook = Callable[[NSGACheckpoint], None]


@dataclass
class NSGAResult:
    """Outcome of one NSGA-II run."""

    front: list[MultiObjectivePoint]
    num_evaluations: int
    generations: int
    history: list[tuple[int, float]] = field(default_factory=list)

    def select_by_alpha(self, alpha: float) -> MultiObjectivePoint:
        """The frontier point Formula 2 would pick at ``alpha``."""
        if not self.front:
            raise SearchError("empty frontier")
        return min(self.front, key=lambda p: p.formula2(alpha))

    def as_pareto_points(self) -> list[ParetoPoint]:
        """Frontier in the :mod:`repro.dse.pareto` representation."""
        return [
            ParetoPoint(p.capacity_bytes, p.metric_cost) for p in self.front
        ]


# ---------------------------------------------------------------------------
def fast_non_dominated_sort(
    points: Sequence[MultiObjectivePoint],
) -> list[list[int]]:
    """Indices grouped into fronts: fronts[0] is the non-dominated set."""
    dominated_by: list[list[int]] = [[] for _ in points]
    domination_count = [0] * len(points)
    fronts: list[list[int]] = [[]]
    for i, p in enumerate(points):
        for j, q in enumerate(points):
            if i == j:
                continue
            if p.dominates(q):
                dominated_by[i].append(j)
            elif q.dominates(p):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        nxt: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current += 1
        fronts.append(nxt)
    fronts.pop()  # the loop always appends one empty trailing front
    return fronts


def crowding_distance(
    points: Sequence[MultiObjectivePoint], indices: Sequence[int]
) -> dict[int, float]:
    """Crowding distance of each index within one front."""
    distance = {i: 0.0 for i in indices}
    if len(indices) <= 2:
        return {i: float("inf") for i in indices}
    for axis in range(2):
        ordered = sorted(indices, key=lambda i: points[i].objectives[axis])
        lo = points[ordered[0]].objectives[axis]
        hi = points[ordered[-1]].objectives[axis]
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        span = hi - lo
        if span <= 0:
            continue
        for rank in range(1, len(ordered) - 1):
            below = points[ordered[rank - 1]].objectives[axis]
            above = points[ordered[rank + 1]].objectives[axis]
            distance[ordered[rank]] += (above - below) / span
    return distance


def hypervolume(
    front: Sequence[MultiObjectivePoint],
    reference: tuple[float, float],
) -> float:
    """2D hypervolume dominated by ``front`` up to ``reference``.

    The standard quality indicator for a two-objective frontier: the area
    between the front and a reference (worst-case) corner. Larger is
    better; points beyond the reference contribute nothing.
    """
    ordered = sorted(
        (p for p in front
         if p.objectives[0] < reference[0] and p.objectives[1] < reference[1]),
        key=lambda p: p.objectives[0],
    )
    area = 0.0
    prev_y = reference[1]
    for point in ordered:
        x, y = point.objectives
        if y < prev_y:
            area += (reference[0] - x) * (prev_y - y)
            prev_y = y
    return area


# ---------------------------------------------------------------------------
class _Archive:
    """Deduplicated evaluation cache keyed by genome identity."""

    def __init__(self, problem: OptimizationProblem, metric: Metric):
        self.problem = problem
        self.metric = metric
        self.evaluations = 0
        self._cache: dict[tuple, MultiObjectivePoint] = {}
        # One task object per run keeps a process pool warm (the backend
        # keys its worker pool to task identity).
        self._task = ParetoCostTask(problem, metric)

    def evaluate_batch(
        self,
        genomes: Sequence[Genome],
        backend: EvaluationBackend,
    ) -> list[MultiObjectivePoint]:
        """Batch evaluation preserving order, dedup, and evaluation count.

        Only the *unique* cache misses fan out, so ``evaluations`` counts
        exactly what a serial in-order sweep would have computed, and the
        metric costs are bit-identical for any backend (evaluation is
        pure per genome).
        """

        def store(
            key: tuple, genome: Genome, metric_cost: float
        ) -> MultiObjectivePoint:
            self.evaluations += 1
            point = MultiObjectivePoint(
                genome=genome,
                capacity_bytes=genome.memory.total_bytes,
                metric_cost=metric_cost,
            )
            self._cache[key] = point
            return point

        return cached_map(
            self._task,
            genomes,
            backend,
            key=Genome.key,
            lookup=self._cache.get,
            store=store,
        )

    def export(self) -> list[MultiObjectivePoint]:
        """Every archived point, in insertion (evaluation) order."""
        return list(self._cache.values())

    def restore(
        self, points: Sequence[MultiObjectivePoint], evaluations: int
    ) -> None:
        """Reinstall a checkpointed archive (keys rebuilt from genomes)."""
        self._cache = {point.genome.key(): point for point in points}
        self.evaluations = evaluations


def _crowded_pick(
    rng: random.Random,
    points: list[MultiObjectivePoint],
    rank: dict[int, int],
    crowd: dict[int, float],
) -> MultiObjectivePoint:
    """Binary tournament under the crowded-comparison operator."""
    a, b = rng.randrange(len(points)), rng.randrange(len(points))
    if (rank[a], -crowd[a]) <= (rank[b], -crowd[b]):
        return points[a]
    return points[b]


def nsga2_co_optimize(
    evaluator: Evaluator,
    space: CapacitySpace,
    metric: Metric = Metric.ENERGY,
    config: NSGAConfig | None = None,
    backend: EvaluationBackend | None = None,
    on_generation: NSGAGenerationHook | None = None,
    resume_from: NSGACheckpoint | None = None,
) -> NSGAResult:
    """Run NSGA-II over (buffer capacity, metric cost).

    Returns the final non-dominated frontier, deduplicated by objective
    values and sorted by capacity. The ``history`` records hypervolume
    per generation against the fixed corner of the initial population,
    so convergence is observable.

    Each generation's offspring are bred first and evaluated as one batch
    through ``backend`` (built from ``config.workers`` when not given);
    selection never interleaves with evaluation, so the frontier is
    bit-identical to serial execution for a fixed seed.

    ``on_generation`` receives an :class:`NSGACheckpoint` after the
    initial evaluation (generation 0) and after every generation;
    ``resume_from`` continues a checkpointed run bit-identically to one
    that was never interrupted (same ``config`` required).
    """
    config = config or NSGAConfig()
    owns_backend = backend is None
    if backend is None:
        backend = resolve_backend(config.workers, config.eval_chunk_size)
    try:
        return _nsga2(
            evaluator, space, metric, config, backend, on_generation, resume_from
        )
    finally:
        if owns_backend:
            backend.close()


def _nsga2(
    evaluator: Evaluator,
    space: CapacitySpace,
    metric: Metric,
    config: NSGAConfig,
    backend: EvaluationBackend,
    on_generation: NSGAGenerationHook | None = None,
    resume_from: NSGACheckpoint | None = None,
) -> NSGAResult:
    rng = random.Random(config.seed)
    # alpha is irrelevant here (selection is Pareto-based), but the shared
    # problem object provides sampling and in-situ capacity repair.
    problem = OptimizationProblem(
        evaluator=evaluator,
        metric=metric,
        alpha=1.0,
        space=space,
        incremental=config.incremental,
        batch_pricing=config.batch_pricing,
    )
    archive = _Archive(problem, metric)

    def snapshot(generation: int) -> NSGACheckpoint:
        return NSGACheckpoint(
            generation=generation,
            rng_state=rng.getstate(),
            evaluations=archive.evaluations,
            reference=reference,
            history=list(history),
            points=list(points),
            archive=archive.export(),
        )

    if resume_from is not None:
        if resume_from.generation > config.generations:
            raise SearchError(
                f"checkpoint is at generation {resume_from.generation}, "
                f"config only runs {config.generations}"
            )
        rng.setstate(resume_from.rng_state)
        archive.restore(resume_from.archive, resume_from.evaluations)
        points = list(resume_from.points)
        reference = resume_from.reference
        history = list(resume_from.history)
        start_generation = resume_from.generation + 1
    else:
        genomes = initialize_population(problem, config.population_size, rng)
        points = archive.evaluate_batch(genomes, backend)
        feasible = [p for p in points if p.metric_cost != float("inf")]
        if feasible:
            reference = (
                max(p.objectives[0] for p in feasible) * 1.1,
                max(p.objectives[1] for p in feasible) * 1.1,
            )
        else:
            reference = (float("inf"), float("inf"))
        history = []
        start_generation = 1
        if on_generation is not None:
            on_generation(snapshot(0))

    for generation in range(start_generation, config.generations + 1):
        fronts = fast_non_dominated_sort(points)
        rank: dict[int, int] = {}
        crowd: dict[int, float] = {}
        for level, front in enumerate(fronts):
            distances = crowding_distance(points, front)
            for index in front:
                rank[index] = level
                crowd[index] = distances[index]

        # Breed the full generation first (RNG consumption is unchanged:
        # evaluation never touched the RNG), then evaluate it as one batch
        # so the backend can fan the children out to its workers.
        children: list[Genome] = []
        while len(children) < config.population_size:
            parent_a = _crowded_pick(rng, points, rank, crowd)
            if rng.random() < config.crossover_rate:
                parent_b = _crowded_pick(rng, points, rank, crowd)
                child = crossover(parent_a.genome, parent_b.genome, rng, space)
            else:
                child = parent_a.genome
            if rng.random() < config.mutation_rate:
                op = rng.choice((modify_node, split_subgraph, merge_subgraph))
                child = op(child, rng)
            if rng.random() < config.dse_mutation_rate:
                child = mutate_dse(child, rng, space)
            children.append(problem.repair(child))
        offspring = archive.evaluate_batch(children, backend)

        combined = points + offspring
        fronts = fast_non_dominated_sort(combined)
        survivors: list[MultiObjectivePoint] = []
        for front in fronts:
            if len(survivors) + len(front) <= config.population_size:
                survivors.extend(combined[i] for i in front)
                continue
            distances = crowding_distance(combined, front)
            ordered = sorted(front, key=lambda i: -distances[i])
            remaining = config.population_size - len(survivors)
            survivors.extend(combined[i] for i in ordered[:remaining])
            break
        points = survivors
        if reference[0] != float("inf"):
            first = [combined[i] for i in fronts[0]]
            history.append((generation, hypervolume(first, reference)))
        emit(
            "nsga.generation",
            generation=generation,
            evaluations=archive.evaluations,
        )
        if on_generation is not None:
            on_generation(snapshot(generation))

    final_front_indices = fast_non_dominated_sort(points)[0]
    seen: set[tuple[float, float]] = set()
    frontier: list[MultiObjectivePoint] = []
    for index in sorted(
        final_front_indices, key=lambda i: points[i].objectives
    ):
        objectives = points[index].objectives
        if objectives in seen or objectives[1] == float("inf"):
            continue
        seen.add(objectives)
        frontier.append(points[index])
    return NSGAResult(
        front=frontier,
        num_evaluations=archive.evaluations,
        generations=config.generations,
        history=history,
    )
