"""Pareto-front analysis over recorded search samples.

Every Formula 2 search implicitly explores a two-objective space —
buffer capacity versus mapping cost (Fig 13's scatter). These helpers
extract the non-dominated frontier from recorded samples and locate the
point a given ``alpha`` would select, which is how the Fig 14 sweep can be
read off a single search's samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..ga.engine import SampleRecord


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (capacity, metric-cost) design point."""

    total_buffer_bytes: int
    metric_cost: float

    def formula2(self, alpha: float) -> float:
        """The Formula 2 value this point attains at ``alpha``."""
        return self.total_buffer_bytes + alpha * self.metric_cost


def pareto_front(
    samples: Iterable[SampleRecord], alpha: float
) -> list[ParetoPoint]:
    """Non-dominated (capacity, metric) points from Formula 2 samples.

    Sample records carry the combined cost ``BUF + alpha * metric``; the
    metric coordinate is recovered with the ``alpha`` the samples were
    collected under. Points are returned sorted by capacity, strictly
    decreasing in metric cost.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    best_by_capacity: dict[int, float] = {}
    for sample in samples:
        if sample.cost == float("inf"):
            continue
        metric = (sample.cost - sample.total_buffer_bytes) / alpha
        current = best_by_capacity.get(sample.total_buffer_bytes)
        if current is None or metric < current:
            best_by_capacity[sample.total_buffer_bytes] = metric
    front: list[ParetoPoint] = []
    for capacity in sorted(best_by_capacity):
        metric = best_by_capacity[capacity]
        if front and metric >= front[-1].metric_cost:
            continue
        front.append(ParetoPoint(capacity, metric))
    return front


def select_by_alpha(
    front: Sequence[ParetoPoint], alpha: float
) -> ParetoPoint:
    """The frontier point Formula 2 would choose at ``alpha``."""
    if not front:
        raise ValueError("empty Pareto front")
    return min(front, key=lambda p: p.formula2(alpha))


def knee_point(front: Sequence[ParetoPoint]) -> ParetoPoint:
    """The diminishing-returns knee of the frontier.

    Normalizes both axes to [0, 1] and returns the point closest to the
    utopia corner — the "critical capacity" of the paper's Fig 2
    discussion, where extra SRAM stops buying much.
    """
    if not front:
        raise ValueError("empty Pareto front")
    if len(front) == 1:
        return front[0]
    caps = [p.total_buffer_bytes for p in front]
    costs = [p.metric_cost for p in front]
    cap_span = max(caps) - min(caps) or 1
    cost_span = max(costs) - min(costs) or 1

    def distance(p: ParetoPoint) -> float:
        x = (p.total_buffer_bytes - min(caps)) / cap_span
        y = (p.metric_cost - min(costs)) / cost_span
        return x * x + y * y

    return min(front, key=distance)
