"""SA-based co-optimization baseline (Sec 4.2.4, Tables 1/2).

Same genome space, operators, and Formula 2 objective as Cocco, but the
search is a single simulated-annealing chain instead of a population —
the configuration whose instability the paper's convergence study
highlights.
"""

from __future__ import annotations

from ..cost.evaluator import Evaluator
from ..cost.objective import Metric
from ..ga.annealing import SACheckpoint, SAConfig, simulated_annealing
from ..ga.problem import OptimizationProblem
from ..parallel.backend import EvaluationBackend
from ..search_space import CapacitySpace
from .results import DSEResult


def sa_co_optimize(
    evaluator: Evaluator,
    space: CapacitySpace,
    metric: Metric = Metric.ENERGY,
    alpha: float = 0.002,
    sa_config: SAConfig | None = None,
    backend: EvaluationBackend | None = None,
    on_step=None,
    resume_from: SACheckpoint | None = None,
    max_evaluations: int | None = None,
) -> DSEResult:
    """Joint partition + capacity search with simulated annealing.

    The SA chain is sequential, so ``backend`` only matters for shared
    cache-statistics accounting — see
    :func:`repro.ga.annealing.simulated_annealing`. ``on_step`` /
    ``resume_from`` / ``max_evaluations`` pass straight through to the
    chain, enabling durable checkpoints, bit-identical resume, and
    budget-capped runs (the suite's SA cells use all three).
    """
    problem = OptimizationProblem(
        evaluator=evaluator, metric=metric, alpha=alpha, space=space
    )
    result = simulated_annealing(
        problem,
        sa_config,
        backend=backend,
        on_step=on_step,
        resume_from=resume_from,
        max_evaluations=max_evaluations,
    )
    _, partition_cost = problem.evaluate(result.best_genome)
    return DSEResult(
        method="SA",
        best_genome=result.best_genome,
        best_cost=result.best_cost,
        partition_cost=partition_cost,
        num_evaluations=result.num_evaluations,
        history=result.history,
        samples=result.samples,
    )
