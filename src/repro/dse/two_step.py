"""Two-step exploration baselines: RS+GA and GS+GA (Sec 5.3).

The two-step scheme decouples capacity search from partition search:
sample memory-capacity candidates (randomly for RS, on a coarse
large-to-small grid for GS), run an independent partition-only GA under
each candidate, and keep the candidate with the best Formula 2 cost. The
paper evaluates 5,000 samples per capacity candidate; the per-candidate
budget is configurable here.

The whole scheme checkpoints at GA-generation granularity: every inner
engine generation yields a composite :class:`TwoStepCheckpoint` — the
candidate cursor, the running candidate's
:class:`~repro.ga.engine.EngineCheckpoint`, and the cross-candidate
telemetry folded so far — so an interrupted run resumes *mid-candidate*
instead of from candidate zero. ``max_evaluations`` caps the cumulative
evaluation count across every candidate exactly, mirroring
``GeneticEngine.max_samples``; a capped run stops mid-candidate and a
later resume with a higher cap continues the same trajectory, which is
what lets ``repro suite --budget`` stop ``rs``/``gs`` cells at their
allocation instead of running them cell-atomically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable

from ..config import MemoryConfig
from ..cost.evaluator import Evaluator
from ..cost.objective import Metric, co_opt_objective
from ..errors import SearchError
from ..ga.engine import EngineCheckpoint, GAConfig, GeneticEngine, SampleRecord
from ..ga.genome import Genome
from ..ga.problem import OptimizationProblem
from ..obs import emit
from ..parallel.backend import EvaluationBackend, resolve_backend
from ..search_space import CapacitySpace
from .results import DSEResult


@dataclass
class TwoStepCheckpoint:
    """Composite two-step state captured after one inner GA generation.

    ``candidate`` is the cursor into the (deterministically derived)
    capacity-candidate list and ``engine`` that candidate's mid-run GA
    state. ``cumulative`` counts only the evaluations of *finished*
    candidates; the telemetry fields (history, samples, running best,
    best-so-far) likewise reflect finished candidates only — the
    running candidate folds in when it completes, exactly as in an
    uninterrupted run. ``candidates`` pins the capacity list so a
    resume against a drifted configuration fails loudly instead of
    silently searching a different space.

    Checkpoints are in-memory objects; :mod:`repro.runs.checkpoint`
    serializes them to JSON (kind ``"two_step"``, or the suite scheme
    names ``"rs"``/``"gs"``) for the run registry.
    """

    method: str
    candidate: int
    engine: EngineCheckpoint
    cumulative: int
    candidates: list[MemoryConfig]
    running_best: float = float("inf")
    history: list[tuple[int, float]] = field(default_factory=list)
    samples: list[SampleRecord] = field(default_factory=list)
    best_index: int | None = None
    best_genome: Genome | None = None
    best_cost: float = float("inf")

    @property
    def evaluations(self) -> int:
        """Total evaluations spent: finished candidates + the cursor's."""
        return self.cumulative + self.engine.evaluations

    @property
    def generation(self) -> int:
        """The cursor candidate's inner-engine generation."""
        return self.engine.generation


#: Called after every scored inner-GA generation with the composite.
TwoStepHook = Callable[[TwoStepCheckpoint], None]


def checkpoint_tick(
    checkpoint: TwoStepCheckpoint, ga_config: GAConfig
) -> int:
    """Monotonic scalar position of a composite checkpoint.

    One candidate spans ``generations + 1`` hook firings (generation 0
    after initial scoring, then one per generation), so the tick orders
    every snapshot of a run totally — the suite keys its streamed
    history lines by it.
    """
    return (
        checkpoint.candidate * (ga_config.generations + 1)
        + checkpoint.generation
    )


def checkpoint_finished(
    checkpoint: TwoStepCheckpoint, ga_config: GAConfig
) -> bool:
    """Whether the snapshot is the search's final state."""
    return (
        checkpoint.candidate == len(checkpoint.candidates) - 1
        and checkpoint.generation == ga_config.generations
    )


def _partition_problem(
    evaluator: Evaluator, memory: MemoryConfig, metric: Metric
) -> OptimizationProblem:
    return OptimizationProblem(
        evaluator=evaluator, metric=metric, alpha=None, fixed_memory=memory
    )


def _two_step(
    evaluator: Evaluator,
    candidates: list[MemoryConfig],
    metric: Metric,
    alpha: float,
    ga_config: GAConfig,
    method_name: str,
    backend: EvaluationBackend | None = None,
    on_checkpoint: TwoStepHook | None = None,
    resume_from: TwoStepCheckpoint | None = None,
    max_evaluations: int | None = None,
) -> DSEResult:
    if not candidates:
        raise SearchError(f"{method_name}: no capacity candidates to try")
    if max_evaluations is not None and max_evaluations < 1:
        raise SearchError("max_evaluations must be positive when set")
    owns_backend = backend is None
    if backend is None:
        # One backend object for every per-candidate GA run. A process
        # pool is still rebuilt at candidate boundaries (each candidate
        # is a fresh problem, and the pool is keyed to the problem's
        # task — a cheap fork, amortized over a whole GA run), but the
        # single object gives callers one lifecycle and one stats sink.
        backend = resolve_backend(ga_config.workers, ga_config.eval_chunk_size)
    try:
        return _two_step_inner(
            evaluator, candidates, metric, alpha, ga_config, method_name,
            backend, on_checkpoint, resume_from, max_evaluations,
        )
    finally:
        if owns_backend:
            backend.close()


def _memory_key(memory: MemoryConfig) -> tuple:
    return (memory.mode, memory.total_bytes, memory.activation_capacity)


def _validate_resume(
    resume_from: TwoStepCheckpoint,
    candidates: list[MemoryConfig],
    method_name: str,
) -> None:
    if resume_from.method != method_name:
        raise SearchError(
            f"checkpoint belongs to {resume_from.method!r}, "
            f"resuming {method_name!r}"
        )
    expected = [_memory_key(m) for m in candidates]
    stored = [_memory_key(m) for m in resume_from.candidates]
    if expected != stored:
        raise SearchError(
            f"{method_name}: checkpointed capacity candidates do not match "
            "the configured space/seed — refusing to resume a different "
            "search"
        )
    if resume_from.candidate >= len(candidates):
        raise SearchError(
            f"checkpoint is at candidate {resume_from.candidate}, only "
            f"{len(candidates)} candidates configured"
        )


def _two_step_inner(
    evaluator: Evaluator,
    candidates: list[MemoryConfig],
    metric: Metric,
    alpha: float,
    ga_config: GAConfig,
    method_name: str,
    backend: EvaluationBackend,
    on_checkpoint: TwoStepHook | None,
    resume_from: TwoStepCheckpoint | None,
    max_evaluations: int | None,
) -> DSEResult:
    if resume_from is not None:
        _validate_resume(resume_from, candidates, method_name)
        start = resume_from.candidate
        cumulative = resume_from.cumulative
        running_best = resume_from.running_best
        history = list(resume_from.history)
        samples = list(resume_from.samples)
        best_index = resume_from.best_index
        best_genome = resume_from.best_genome
        best_cost = resume_from.best_cost
    else:
        start = 0
        cumulative = 0
        running_best = float("inf")
        history = []
        samples = []
        best_index = None
        best_genome = None
        best_cost = float("inf")

    last_generation = -1
    engine: GeneticEngine | None = None
    for index in range(start, len(candidates)):
        if max_evaluations is not None and cumulative >= max_evaluations:
            break
        memory = candidates[index]
        overrides: dict = {"seed": ga_config.seed + index}
        if max_evaluations is not None:
            # Engine-local cap: the finished candidates' spend is frozen
            # while this one runs, so the remainder is exact — and it is
            # recomputable from any mid-candidate checkpoint (which
            # stores the same frozen ``cumulative``), keeping resumed
            # caps identical to uninterrupted ones.
            overrides["max_samples"] = max_evaluations - cumulative
        per_candidate = replace(ga_config, **overrides)
        problem = _partition_problem(evaluator, memory, metric)
        engine = GeneticEngine(problem, per_candidate, backend=backend)

        def hook(state: EngineCheckpoint, index: int = index) -> None:
            nonlocal last_generation
            last_generation = state.generation
            emit(
                "two_step.candidate",
                method=method_name,
                candidate=index,
                generation=state.generation,
                evaluations=cumulative + state.evaluations,
                best_cost=state.best_cost,
            )
            if on_checkpoint is not None:
                on_checkpoint(
                    TwoStepCheckpoint(
                        method=method_name,
                        candidate=index,
                        engine=state,
                        cumulative=cumulative,
                        candidates=list(candidates),
                        running_best=running_best,
                        history=list(history),
                        samples=list(samples),
                        best_index=best_index,
                        best_genome=best_genome,
                        best_cost=best_cost,
                    )
                )

        if resume_from is not None and index == start:
            last_generation = resume_from.engine.generation
            result = engine.resume(resume_from.engine, on_generation=hook)
        else:
            result = engine.run(on_generation=hook)
        if (
            max_evaluations is not None
            and last_generation < per_candidate.generations
        ):
            # The global cap landed mid-candidate: its engine checkpoint
            # stays the resume point; nothing folds yet (an uninterrupted
            # continuation folds this candidate only when it completes).
            cumulative += result.num_evaluations
            break

        _, partition_cost = problem.evaluate(result.best_genome)
        total = co_opt_objective(partition_cost, memory, alpha, metric)
        for offset, value in result.history:
            candidate_total = memory.total_bytes + alpha * value
            if candidate_total < running_best:
                running_best = candidate_total
                history.append((cumulative + offset, running_best))
        for record in result.samples:
            samples.append(
                SampleRecord(
                    index=cumulative + record.index,
                    cost=memory.total_bytes + alpha * record.cost,
                    total_buffer_bytes=memory.total_bytes,
                    generation=record.generation,
                )
            )
        cumulative += result.num_evaluations
        if best_genome is None or total < best_cost:
            best_index = index
            best_genome = result.best_genome.with_memory(memory)
            best_cost = total

    if best_genome is None:
        # Capped inside the very first candidate: report the partial
        # GA's best (provisional — the run is resumable from its
        # checkpoint and the fold happens when the candidate completes).
        memory = candidates[start]
        partial = (
            engine._best if engine is not None
            else resume_from.engine.best_genome if resume_from is not None
            else None
        )
        if partial is None:
            raise SearchError(
                f"{method_name}: no evaluations performed under the cap"
            )
        problem = _partition_problem(evaluator, memory, metric)
        _, partition_cost = problem.evaluate(partial)
        best_genome = partial.with_memory(memory)
        best_cost = co_opt_objective(partition_cost, memory, alpha, metric)
        best_index = start
    else:
        problem = _partition_problem(
            evaluator, candidates[best_index], metric
        )
        _, partition_cost = problem.evaluate(best_genome)
    return DSEResult(
        method=method_name,
        best_genome=best_genome,
        best_cost=best_cost,
        partition_cost=partition_cost,
        num_evaluations=cumulative,
        history=history,
        samples=samples,
    )


def random_candidates(
    space: CapacitySpace, num_candidates: int, seed: int
) -> list[MemoryConfig]:
    """The RS capacity candidates for ``seed`` (deterministic)."""
    rng = random.Random(seed)
    seen: set[tuple] = set()
    candidates: list[MemoryConfig] = []
    while len(candidates) < num_candidates:
        memory = space.sample(rng)
        key = (memory.total_bytes, memory.activation_capacity)
        if key in seen and len(seen) < num_candidates * 10:
            continue
        seen.add(key)
        candidates.append(memory)
    return candidates


def grid_candidates(
    space: CapacitySpace, stride: int, max_candidates: int
) -> list[MemoryConfig]:
    """The GS capacity candidates (coarse large-to-small grid)."""
    return space.grid(stride=stride, descending=True)[:max_candidates]


def random_search_ga(
    evaluator: Evaluator,
    space: CapacitySpace,
    num_candidates: int = 10,
    metric: Metric = Metric.ENERGY,
    alpha: float = 0.002,
    ga_config: GAConfig | None = None,
    seed: int = 0,
    backend: EvaluationBackend | None = None,
    on_checkpoint: TwoStepHook | None = None,
    resume_from: TwoStepCheckpoint | None = None,
    max_evaluations: int | None = None,
) -> DSEResult:
    """RS+GA: random capacity candidates, independent partition GAs."""
    return _two_step(
        evaluator, random_candidates(space, num_candidates, seed), metric,
        alpha, ga_config or GAConfig(), "RS+GA",
        backend=backend, on_checkpoint=on_checkpoint,
        resume_from=resume_from, max_evaluations=max_evaluations,
    )


def grid_search_ga(
    evaluator: Evaluator,
    space: CapacitySpace,
    stride: int = 8,
    max_candidates: int = 12,
    metric: Metric = Metric.ENERGY,
    alpha: float = 0.002,
    ga_config: GAConfig | None = None,
    backend: EvaluationBackend | None = None,
    on_checkpoint: TwoStepHook | None = None,
    resume_from: TwoStepCheckpoint | None = None,
    max_evaluations: int | None = None,
) -> DSEResult:
    """GS+GA: coarse large-to-small capacity grid, one GA per point."""
    return _two_step(
        evaluator, grid_candidates(space, stride, max_candidates), metric,
        alpha, ga_config or GAConfig(), "GS+GA",
        backend=backend, on_checkpoint=on_checkpoint,
        resume_from=resume_from, max_evaluations=max_evaluations,
    )
