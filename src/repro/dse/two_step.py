"""Two-step exploration baselines: RS+GA and GS+GA (Sec 5.3).

The two-step scheme decouples capacity search from partition search:
sample memory-capacity candidates (randomly for RS, on a coarse
large-to-small grid for GS), run an independent partition-only GA under
each candidate, and keep the candidate with the best Formula 2 cost. The
paper evaluates 5,000 samples per capacity candidate; the per-candidate
budget is configurable here.
"""

from __future__ import annotations

import random
from dataclasses import replace

from ..config import MemoryConfig
from ..cost.evaluator import Evaluator
from ..cost.objective import Metric, co_opt_objective
from ..errors import SearchError
from ..ga.engine import GAConfig, GeneticEngine, SampleRecord
from ..ga.problem import OptimizationProblem
from ..parallel.backend import EvaluationBackend, resolve_backend
from ..search_space import CapacitySpace
from .results import DSEResult


def _partition_ga(
    evaluator: Evaluator,
    memory: MemoryConfig,
    metric: Metric,
    ga_config: GAConfig,
    backend: EvaluationBackend | None = None,
):
    problem = OptimizationProblem(
        evaluator=evaluator, metric=metric, alpha=None, fixed_memory=memory
    )
    return problem, GeneticEngine(problem, ga_config, backend=backend).run()


def _two_step(
    evaluator: Evaluator,
    candidates: list[MemoryConfig],
    metric: Metric,
    alpha: float,
    ga_config: GAConfig,
    method_name: str,
    backend: EvaluationBackend | None = None,
) -> DSEResult:
    if not candidates:
        raise SearchError(f"{method_name}: no capacity candidates to try")
    owns_backend = backend is None
    if backend is None:
        # One backend object for every per-candidate GA run. A process
        # pool is still rebuilt at candidate boundaries (each candidate
        # is a fresh problem, and the pool is keyed to the problem's
        # task — a cheap fork, amortized over a whole GA run), but the
        # single object gives callers one lifecycle and one stats sink.
        backend = resolve_backend(ga_config.workers, ga_config.eval_chunk_size)
    try:
        return _two_step_inner(
            evaluator, candidates, metric, alpha, ga_config, method_name, backend
        )
    finally:
        if owns_backend:
            backend.close()


def _two_step_inner(
    evaluator: Evaluator,
    candidates: list[MemoryConfig],
    metric: Metric,
    alpha: float,
    ga_config: GAConfig,
    method_name: str,
    backend: EvaluationBackend,
) -> DSEResult:
    best: DSEResult | None = None
    cumulative = 0
    history: list[tuple[int, float]] = []
    samples: list[SampleRecord] = []
    running_best = float("inf")
    for index, memory in enumerate(candidates):
        per_candidate = replace(ga_config, seed=ga_config.seed + index)
        problem, result = _partition_ga(
            evaluator, memory, metric, per_candidate, backend
        )
        _, partition_cost = problem.evaluate(result.best_genome)
        total = co_opt_objective(partition_cost, memory, alpha, metric)
        for offset, value in result.history:
            candidate_total = memory.total_bytes + alpha * value
            if candidate_total < running_best:
                running_best = candidate_total
                history.append((cumulative + offset, running_best))
        for record in result.samples:
            samples.append(
                SampleRecord(
                    index=cumulative + record.index,
                    cost=memory.total_bytes + alpha * record.cost,
                    total_buffer_bytes=memory.total_bytes,
                    generation=record.generation,
                )
            )
        cumulative += result.num_evaluations
        if best is None or total < best.best_cost:
            best = DSEResult(
                method=method_name,
                best_genome=result.best_genome.with_memory(memory),
                best_cost=total,
                partition_cost=partition_cost,
                num_evaluations=cumulative,
                history=history,
                samples=samples,
            )
    assert best is not None
    best.num_evaluations = cumulative
    best.history = history
    best.samples = samples
    return best


def random_search_ga(
    evaluator: Evaluator,
    space: CapacitySpace,
    num_candidates: int = 10,
    metric: Metric = Metric.ENERGY,
    alpha: float = 0.002,
    ga_config: GAConfig | None = None,
    seed: int = 0,
    backend: EvaluationBackend | None = None,
) -> DSEResult:
    """RS+GA: random capacity candidates, independent partition GAs."""
    rng = random.Random(seed)
    seen: set[tuple] = set()
    candidates: list[MemoryConfig] = []
    while len(candidates) < num_candidates:
        memory = space.sample(rng)
        key = (memory.total_bytes, memory.activation_capacity)
        if key in seen and len(seen) < num_candidates * 10:
            continue
        seen.add(key)
        candidates.append(memory)
    return _two_step(
        evaluator, candidates, metric, alpha, ga_config or GAConfig(), "RS+GA",
        backend=backend,
    )


def grid_search_ga(
    evaluator: Evaluator,
    space: CapacitySpace,
    stride: int = 8,
    max_candidates: int = 12,
    metric: Metric = Metric.ENERGY,
    alpha: float = 0.002,
    ga_config: GAConfig | None = None,
    backend: EvaluationBackend | None = None,
) -> DSEResult:
    """GS+GA: coarse large-to-small capacity grid, one GA per point."""
    candidates = space.grid(stride=stride, descending=True)[:max_candidates]
    return _two_step(
        evaluator, candidates, metric, alpha, ga_config or GAConfig(), "GS+GA",
        backend=backend,
    )
