"""Result record shared by every exploration scheme."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import BufferMode, MemoryConfig
from ..cost.evaluator import PartitionCost
from ..ga.engine import SampleRecord
from ..ga.genome import Genome
from ..units import to_kb


@dataclass
class DSEResult:
    """Outcome of one exploration method on one model."""

    method: str
    best_genome: Genome
    best_cost: float
    partition_cost: PartitionCost
    num_evaluations: int
    history: list[tuple[int, float]] = field(default_factory=list)
    samples: list[SampleRecord] = field(default_factory=list)

    @property
    def memory(self) -> MemoryConfig:
        return self.best_genome.memory

    def describe_memory(self) -> str:
        """KB-style size string matching the paper's tables."""
        memory = self.memory
        if memory.mode is BufferMode.SHARED:
            return f"{to_kb(memory.shared_buffer_bytes):.0f}KB"
        return (
            f"A={to_kb(memory.global_buffer_bytes):.0f}KB "
            f"W={to_kb(memory.weight_buffer_bytes):.0f}KB"
        )

    def samples_to_reach(self, threshold: float) -> int | None:
        """Samples needed until the best cost first drops to ``threshold``.

        Used for the Fig 12(d) sample-efficiency table; ``None`` when the
        run never reached the threshold.
        """
        for samples, cost in self.history:
            if cost <= threshold:
                return samples
        return None
