"""Fixed-hardware baseline: partition-only GA at a preset capacity.

The Table 1/2 rows Buf(S), Buf(M), Buf(L): the memory configuration is
frozen and only the graph partition is optimized (Formula 1); the
reported cost re-prices the result with Formula 2 so it is comparable to
the co-exploration methods.
"""

from __future__ import annotations

from ..config import MemoryConfig
from ..cost.evaluator import Evaluator
from ..cost.objective import Metric, co_opt_objective
from ..ga.engine import GAConfig, GeneticEngine
from ..ga.problem import OptimizationProblem
from .results import DSEResult


def optimize_fixed(
    evaluator: Evaluator,
    memory: MemoryConfig,
    metric: Metric = Metric.ENERGY,
    alpha: float = 0.002,
    ga_config: GAConfig | None = None,
    method_name: str = "fixed",
) -> DSEResult:
    """Partition-only GA at ``memory``; cost reported via Formula 2."""
    problem = OptimizationProblem(
        evaluator=evaluator, metric=metric, alpha=None, fixed_memory=memory
    )
    engine = GeneticEngine(problem, ga_config)
    result = engine.run()
    _, partition_cost = problem.evaluate(result.best_genome)
    total = co_opt_objective(partition_cost, memory, alpha, metric)
    history = [
        (samples, memory.total_bytes + alpha * value)
        for samples, value in result.history
    ]
    return DSEResult(
        method=method_name,
        best_genome=result.best_genome.with_memory(memory),
        best_cost=total,
        partition_cost=partition_cost,
        num_evaluations=result.num_evaluations,
        history=history,
        samples=result.samples,
    )
