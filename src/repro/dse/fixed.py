"""Fixed-hardware baseline: partition-only GA at a preset capacity.

The Table 1/2 rows Buf(S), Buf(M), Buf(L): the memory configuration is
frozen and only the graph partition is optimized (Formula 1); the
reported cost re-prices the result with Formula 2 so it is comparable to
the co-exploration methods.

Like every other searcher, the baseline is interruptible: the inner
engine's generation-keyed :class:`~repro.ga.engine.EngineCheckpoint`
stream is exposed via ``on_generation``, a run continues bit-identically
through ``resume_from``, and ``max_evaluations`` caps the evaluation
count exactly (the engine truncates its final batch rather than
overshooting).
"""

from __future__ import annotations

from dataclasses import replace

from ..config import MemoryConfig
from ..cost.evaluator import Evaluator
from ..cost.objective import Metric, co_opt_objective
from ..ga.engine import EngineCheckpoint, GAConfig, GenerationHook, GeneticEngine
from ..ga.problem import OptimizationProblem
from .results import DSEResult


def optimize_fixed(
    evaluator: Evaluator,
    memory: MemoryConfig,
    metric: Metric = Metric.ENERGY,
    alpha: float = 0.002,
    ga_config: GAConfig | None = None,
    method_name: str = "fixed",
    on_generation: GenerationHook | None = None,
    resume_from: EngineCheckpoint | None = None,
    max_evaluations: int | None = None,
) -> DSEResult:
    """Partition-only GA at ``memory``; cost reported via Formula 2."""
    problem = OptimizationProblem(
        evaluator=evaluator, metric=metric, alpha=None, fixed_memory=memory
    )
    config = ga_config or GAConfig()
    if max_evaluations is not None:
        config = replace(config, max_samples=max_evaluations)
    engine = GeneticEngine(problem, config)
    if resume_from is not None:
        result = engine.resume(resume_from, on_generation=on_generation)
    else:
        result = engine.run(on_generation=on_generation)
    _, partition_cost = problem.evaluate(result.best_genome)
    total = co_opt_objective(partition_cost, memory, alpha, metric)
    history = [
        (samples, memory.total_bytes + alpha * value)
        for samples, value in result.history
    ]
    return DSEResult(
        method=method_name,
        best_genome=result.best_genome.with_memory(memory),
        best_cost=total,
        partition_cost=partition_cost,
        num_evaluations=result.num_evaluations,
        history=history,
        samples=result.samples,
    )
