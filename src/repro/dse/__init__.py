"""Design-space exploration schemes (Sec 5.3): fixed, two-step, co-opt,
plus a multi-objective NSGA-II extension producing full Pareto fronts."""

from .results import DSEResult
from .fixed import optimize_fixed
from .two_step import TwoStepCheckpoint, grid_search_ga, random_search_ga
from .cocco import cocco_co_optimize, cocco_partition_only
from .sa import sa_co_optimize
from .pareto import ParetoPoint, knee_point, pareto_front, select_by_alpha
from .nsga import (
    MultiObjectivePoint,
    NSGAConfig,
    NSGAResult,
    crowding_distance,
    fast_non_dominated_sort,
    hypervolume,
    nsga2_co_optimize,
)

__all__ = [
    "DSEResult",
    "TwoStepCheckpoint",
    "optimize_fixed",
    "random_search_ga",
    "grid_search_ga",
    "cocco_co_optimize",
    "cocco_partition_only",
    "sa_co_optimize",
    "ParetoPoint",
    "pareto_front",
    "select_by_alpha",
    "knee_point",
    "MultiObjectivePoint",
    "NSGAConfig",
    "NSGAResult",
    "fast_non_dominated_sort",
    "crowding_distance",
    "hypervolume",
    "nsga2_co_optimize",
]
