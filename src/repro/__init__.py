"""Cocco: hardware-mapping co-exploration for memory capacity-communication
optimization — a full reproduction of Tan, Zhu & Ma (ASPLOS 2024).

Public API tour:

* :mod:`repro.graphs` — computation-graph IR, transformation passes, and
  the model zoo (``get_model("resnet50")`` etc.).
* :mod:`repro.execution` — the consumption-centric subgraph execution
  scheme (``derive_tiling``).
* :mod:`repro.memory` — MAIN/SIDE region management, allocation, and the
  event-level trace simulator (``trace_subgraph``).
* :mod:`repro.mapper` — the single-layer mapper: PE-array spatial
  assignment, dataflow traffic, utilization calibration.
* :mod:`repro.cost` — the analytical evaluator (EMA / energy / latency /
  bandwidth) and the Formula 1/2 objectives.
* :mod:`repro.partition` — partition representation plus the greedy, DP,
  enumeration, and random baselines.
* :mod:`repro.ga` — Cocco's genetic algorithm and the SA baseline.
* :mod:`repro.parallel` — population-evaluation backends (serial and
  process-pool) shared by every search loop.
* :mod:`repro.dse` — fixed-hardware, two-step, and co-optimization
  exploration schemes, plus the NSGA-II multi-objective extension.
* :mod:`repro.multicore` — multi-core / batch extension.
* :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation.
* :mod:`repro.viz` — ASCII charts and CSV/JSON result export.
* :mod:`repro.cli` — the ``python -m repro`` command-line interface.
"""

from .config import AcceleratorConfig, BufferMode, MemoryConfig
from .errors import (
    AllocationError,
    CapacityError,
    ConfigError,
    GraphError,
    PartitionError,
    ReproError,
    SearchError,
    ShapeError,
    TilingError,
)
from .search_space import CapacitySpace
from .graphs import ComputationGraph, GraphBuilder, LayerSpec, OpKind, TensorShape
from .graphs.zoo import available_models, get_model
from .execution import derive_tiling
from .cost import Evaluator, Metric, co_opt_objective, partition_objective
from .partition import (
    Partition,
    dp_partition,
    enumerate_partition,
    greedy_partition,
    random_partition,
)
from .ga import (
    GAConfig,
    GeneticEngine,
    Genome,
    OptimizationProblem,
    SAConfig,
    simulated_annealing,
)
from .dse import (
    DSEResult,
    NSGAConfig,
    NSGAResult,
    cocco_co_optimize,
    cocco_partition_only,
    grid_search_ga,
    nsga2_co_optimize,
    optimize_fixed,
    random_search_ga,
    sa_co_optimize,
)
from .parallel import (
    EvaluationBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from .mapper import GraphMapping, calibrated_accelerator, map_graph, map_layer
from .memory import SubgraphTrace, trace_subgraph, validate_trace
from .multicore import MultiCoreEvaluator
from .runs import RunRegistry, derive_seed

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "BufferMode",
    "MemoryConfig",
    "CapacitySpace",
    "ReproError",
    "GraphError",
    "ShapeError",
    "PartitionError",
    "TilingError",
    "CapacityError",
    "AllocationError",
    "ConfigError",
    "SearchError",
    "ComputationGraph",
    "GraphBuilder",
    "LayerSpec",
    "OpKind",
    "TensorShape",
    "available_models",
    "get_model",
    "derive_tiling",
    "Evaluator",
    "Metric",
    "partition_objective",
    "co_opt_objective",
    "Partition",
    "greedy_partition",
    "dp_partition",
    "enumerate_partition",
    "random_partition",
    "Genome",
    "GAConfig",
    "GeneticEngine",
    "OptimizationProblem",
    "SAConfig",
    "simulated_annealing",
    "DSEResult",
    "optimize_fixed",
    "random_search_ga",
    "grid_search_ga",
    "cocco_co_optimize",
    "cocco_partition_only",
    "sa_co_optimize",
    "NSGAConfig",
    "NSGAResult",
    "nsga2_co_optimize",
    "EvaluationBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "GraphMapping",
    "map_layer",
    "map_graph",
    "calibrated_accelerator",
    "SubgraphTrace",
    "trace_subgraph",
    "validate_trace",
    "MultiCoreEvaluator",
    "RunRegistry",
    "derive_seed",
    "__version__",
]
