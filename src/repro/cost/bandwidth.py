"""Bandwidth-requirement model (Fig 3, Fig 11).

"The bandwidth requirement of weights is from the prefetch of the next
subgraph, while that of activations is from the inputs and outputs of each
subgraph." Each subgraph's compute window must therefore absorb its own
activation traffic, its own weight *re-streaming* (cache-miss reloads
cannot be prefetched), and the one-time weight load of the *next*
subgraph. The average requirement is time-weighted; the peak is the
largest per-window demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class WindowDemand:
    """DRAM traffic that must complete inside one compute window."""

    bytes_required: int
    window_seconds: float

    @property
    def bytes_per_second(self) -> float:
        if self.window_seconds <= 0:
            return float("inf")
        return self.bytes_required / self.window_seconds


@dataclass(frozen=True)
class BandwidthReport:
    """Average and peak bandwidth requirement over a whole schedule.

    ``average_bytes_per_second`` is the unweighted mean of per-window
    no-stall demands (the paper's "Avg. BW Req."), which can exceed the
    allocated link rate; ``sustained_bytes_per_second`` is the
    time-weighted total-bytes-over-total-time rate.
    """

    average_bytes_per_second: float
    peak_bytes_per_second: float
    sustained_bytes_per_second: float
    windows: tuple[WindowDemand, ...]


def bandwidth_report(
    io_bytes: Sequence[int],
    weight_bytes: Sequence[int],
    weight_ema_bytes: Sequence[int],
    compute_seconds: Sequence[float],
) -> BandwidthReport:
    """Build the bandwidth report for an ordered subgraph schedule.

    All four sequences are indexed by schedule position. ``weight_bytes``
    is each subgraph's one-time weight volume (prefetched during the
    previous window); ``weight_ema_bytes`` additionally counts re-streaming.
    """
    count = len(io_bytes)
    if not (len(weight_bytes) == len(weight_ema_bytes) == len(compute_seconds) == count):
        raise ValueError("bandwidth inputs must have equal lengths")
    windows: list[WindowDemand] = []
    for i in range(count):
        demand = io_bytes[i] + (weight_ema_bytes[i] - weight_bytes[i])
        if i == 0:
            demand += weight_bytes[0]
        if i + 1 < count:
            demand += weight_bytes[i + 1]
        # A subgraph's inputs prefetch during the previous window and its
        # outputs drain during the next, so the transfer deadline spans
        # the neighboring compute windows too.
        span = compute_seconds[max(0, i - 1) : i + 2]
        windows.append(
            WindowDemand(bytes_required=demand, window_seconds=sum(span))
        )
    total_bytes = sum(w.bytes_required for w in windows)
    total_seconds = sum(w.window_seconds for w in windows)
    sustained = total_bytes / total_seconds if total_seconds > 0 else float("inf")
    rates = [w.bytes_per_second for w in windows]
    average = sum(rates) / len(rates) if rates else 0.0
    peak = max(rates, default=0.0)
    return BandwidthReport(
        average_bytes_per_second=average,
        peak_bytes_per_second=peak,
        sustained_bytes_per_second=sustained,
        windows=tuple(windows),
    )
