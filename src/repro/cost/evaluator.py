"""The evaluation environment: partition + memory config -> cost.

This is the reproduction of the paper's "modified simulator that supports
the evaluation of latency and energy" (Sec 5.1.2), restructured as a
layered, throughput-oriented pipeline:

1. :meth:`Evaluator.profile` — memory-*independent* subgraph profiles
   (tilings, footprints, MAC/weight/IO byte counts), produced by the
   single-pass :func:`~repro.cost.ema.profile_subgraph` (one
   :class:`~repro.execution.tiling.TilingStructure` derivation prices all
   tile candidates) over the graph's precomputed constant arrays.
2. :meth:`Evaluator.subgraph_cost` — memory-*dependent* pricing of one
   profile (feasible tile choice, weight caching, EMA/energy/latency)
   with the weight-caching selection and SRAM energy rates hoisted out
   of the tile-option loop.
3. :meth:`Evaluator.evaluate` / :meth:`Evaluator.summarize` — partition
   aggregation. ``evaluate`` builds the full :class:`PartitionCost`
   (bandwidth report included); ``summarize`` is the incremental path the
   search loops use: per-subgraph scalar aggregates are cached, so a
   child genome that shares most cut points with its parents re-prices
   only the subgraphs that differ, and the partition total is a running
   sum over cached scalars. :meth:`Evaluator.feasible` answers the
   in-situ repair probe from the profile's materialized minimum
   footprint without pricing at all.

All caches are bounded LRUs so long searches stay within memory, and
every fast path is bit-identical to the retained reference pipeline in
:mod:`repro.cost.reference` (enforced by ``tests/cost/``).

Setting ``collect_timings=True`` accumulates per-stage wall-clock
(``profile`` / ``price`` / ``aggregate``) into :attr:`Evaluator.timings`
for the CLI's ``--profile-timings`` report.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..config import AcceleratorConfig, BufferMode, MemoryConfig
from ..graphs.graph import ComputationGraph
from ..obs import span
from .bandwidth import BandwidthReport, bandwidth_report
from .ema import (
    DEFAULT_TILE_CANDIDATES,
    SubgraphProfile,
    cached_weight_selection,
    profile_subgraph,
)
from .energy import EnergyBreakdown, EnergyRates
from .latency import dram_bytes_per_cycle, effective_macs_per_cycle


@dataclass(frozen=True)
class SubgraphCost:
    """Cost of executing one subgraph under one memory configuration."""

    profile: SubgraphProfile
    feasible: bool
    tile_rows: int
    num_elementary_ops: int
    cached_weight_nodes: tuple[str, ...]
    cached_weight_bytes: int
    weight_ema_bytes: int
    ema_bytes: int
    energy: EnergyBreakdown | None
    compute_cycles: float
    latency_cycles: float

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj if self.energy is not None else float("inf")


@dataclass(frozen=True)
class PartitionCost:
    """Aggregate cost of a whole partition schedule."""

    feasible: bool
    num_subgraphs: int
    ema_bytes: float
    energy_pj: float
    latency_cycles: float
    bandwidth: BandwidthReport
    subgraphs: tuple[SubgraphCost, ...]


@dataclass(frozen=True)
class PartitionSummary:
    """The scalar aggregates the search objectives actually read.

    A :class:`PartitionCost` without the bandwidth report and the
    per-subgraph cost tuple: cheap to assemble from cached per-subgraph
    scalars on every genome evaluation. Field values are bit-identical
    to the corresponding :class:`PartitionCost` fields.
    """

    feasible: bool
    num_subgraphs: int
    ema_bytes: float
    energy_pj: float
    latency_cycles: float


def _lru_get(cache: OrderedDict, key):
    try:
        value = cache[key]
    except KeyError:
        return None
    cache.move_to_end(key)
    return value


def _lru_put(cache: OrderedDict, key, value, maxsize: int) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > maxsize:
        cache.popitem(last=False)


#: Process-wide direct-solve models keyed by (shape signature, tile
#: candidates). The signature fully determines the model, so the cache
#: is shared by every evaluator in the process; entries are 1-tuples so
#: a ``None`` model (failed preconditions) is distinguishable from a
#: miss. A few thousand shape classes cover even the deepest zoo nets.
_LINEAR_MODELS: OrderedDict[tuple, tuple] = OrderedDict()
_CLASS_CACHE_SIZE = 8192


def _memory_key(memory: MemoryConfig) -> tuple:
    if memory.mode is BufferMode.SHARED:
        return ("shared", memory.shared_buffer_bytes)
    return ("separate", memory.global_buffer_bytes, memory.weight_buffer_bytes)


class Evaluator:
    """Prices subgraphs and partitions of one graph on one accelerator."""

    def __init__(
        self,
        graph: ComputationGraph,
        accel: AcceleratorConfig | None = None,
        tile_candidates: tuple[int, ...] = DEFAULT_TILE_CANDIDATES,
        profile_cache_size: int = 100_000,
        cost_cache_size: int = 200_000,
        collect_timings: bool = False,
    ) -> None:
        self.graph = graph
        self.accel = accel or AcceleratorConfig()
        self.tile_candidates = tile_candidates
        self._profiles: OrderedDict[frozenset[str], SubgraphProfile] = OrderedDict()
        self._min_footprints: OrderedDict[frozenset[str], int] = OrderedDict()
        self._structures: OrderedDict[frozenset[str], object] = OrderedDict()
        self._costs: OrderedDict[tuple, SubgraphCost] = OrderedDict()
        self._profile_cache_size = profile_cache_size
        self._cost_cache_size = cost_cache_size
        self.num_profile_calls = 0
        self.num_cost_calls = 0
        # Batch-pricing telemetry (mergeable via stats/absorb_stats).
        self.num_batch_calls = 0
        self.num_batch_priced = 0
        self.num_batch_direct = 0
        self.num_batch_hits = 0
        self.num_direct_probes = 0
        # Per-(memory, accel) pricing constants, hoisted out of _price.
        self._rates: dict[tuple, EnergyRates] = {}
        # Direct-solve minimum footprints for profile-less feasibility
        # probes (same semantics as SubgraphProfile.min_activation_bytes).
        self._min_acts: OrderedDict[frozenset[str], int] = OrderedDict()
        # Per-subgraph scalar aggregates for the incremental summarize
        # path (a true LRU: hits refresh recency), plus the log that
        # ships warm entries to parallel workers.
        self._summaries: OrderedDict[tuple, tuple] = OrderedDict()
        self._summary_log: list[tuple[tuple, tuple]] = []
        self._record_summaries = False
        self.collect_timings = collect_timings
        self.timings: dict[str, float] = {
            "profile_s": 0.0,
            "price_s": 0.0,
            "aggregate_s": 0.0,
            "batch_s": 0.0,
        }

    # ------------------------------------------------------------------
    def _structure(self, key: frozenset[str]):
        """Cached tile-size-independent tiling structure of a subgraph.

        Shared between feasibility probes, min-footprint pruning, and
        full profiling, so each member set pays for exactly one
        adjacency/ratio derivation no matter which path asks first.
        """
        hit = _lru_get(self._structures, key)
        if hit is not None:
            return hit
        from ..execution.tiling import TilingStructure

        structure = TilingStructure(self.graph, key)
        _lru_put(self._structures, key, structure, self._profile_cache_size)
        return structure

    def profile(self, members: Iterable[str]) -> SubgraphProfile:
        """Memory-independent profile of a subgraph (cached)."""
        key = frozenset(members)
        hit = _lru_get(self._profiles, key)
        if hit is not None:
            return hit
        self.num_profile_calls += 1
        started = time.perf_counter() if self.collect_timings else 0.0
        profile = profile_subgraph(
            self.graph,
            key,
            bytes_per_element=self.accel.bytes_per_element,
            tile_candidates=self.tile_candidates,
            structure=self._structure(key),
        )
        if self.collect_timings:
            self.timings["profile_s"] += time.perf_counter() - started
        _lru_put(self._profiles, key, profile, self._profile_cache_size)
        return profile

    def min_footprint(self, members: Iterable[str]) -> int:
        """Cheapest activation footprint (finest tile only, cached).

        Enumeration pruning probes vast numbers of candidate sets; this
        derives a single finest-grained tiling instead of the full
        tile-option profile.
        """
        key = frozenset(members)
        hit = _lru_get(self._min_footprints, key)
        if hit is not None:
            return hit
        full = _lru_get(self._profiles, key)
        if full is not None:
            value = full.min_activation_bytes
        else:
            structure = self._structure(key)
            arrays = self.graph.arrays(self.accel.bytes_per_element)
            row_bytes = [
                int(arrays.row_bytes[arrays.index[n]]) for n in structure.names
            ]
            value, _ = structure.option(1, row_bytes)
        _lru_put(self._min_footprints, key, value, self._profile_cache_size)
        return value

    def _linear_model(self, structure):
        """Cached closed-form direct-solve model of a shape class.

        ``None`` marks a class that failed the
        :class:`~repro.execution.tiling_batch.LinearTileModel`
        preconditions (the scan path handles it). The cache is
        process-wide: a shape signature fully determines the model, so
        every evaluator of the same network (suite cells, pool workers,
        islands) shares one build per class.
        """
        key = (structure.signature, self.tile_candidates)
        hit = _lru_get(_LINEAR_MODELS, key)
        if hit is not None:
            return hit[0]
        from ..execution.tiling_batch import LinearTileModel

        model = LinearTileModel.build(structure, self.tile_candidates)
        _lru_put(_LINEAR_MODELS, key, (model,), _CLASS_CACHE_SIZE)
        return model

    def feasible(
        self, members: Iterable[str], memory: MemoryConfig | None = None
    ) -> bool:
        """Whether any tile option of the subgraph fits ``memory``.

        Equivalent to ``subgraph_cost(members, memory).feasible`` — a
        subgraph is feasible exactly when its smallest tile option's
        activation footprint fits the activation capacity — but answered
        without pricing. In-situ capacity repair probes far more
        candidate sets than ever get priced, so this is its dedicated
        fast path: a cached profile answers directly; otherwise, for
        shape classes with a closed-form direct solve, the minimum
        footprint is one dot product (no option table at all — the
        population batch pricer later prices such subgraphs without one
        either); everything else profiles as before.
        """
        memory = memory or self.accel.memory
        key = frozenset(members)
        profile = _lru_get(self._profiles, key)
        if profile is not None:
            return profile.min_activation_bytes <= memory.activation_capacity
        hit = _lru_get(self._min_acts, key)
        if hit is None:
            structure = self._structure(key)
            model = self._linear_model(structure)
            if model is None:
                return (
                    self.profile(key).min_activation_bytes
                    <= memory.activation_capacity
                )
            arrays = self.graph.arrays(self.accel.bytes_per_element)
            index = arrays.index
            row_bytes = [int(arrays.row_bytes[index[n]]) for n in structure.names]
            hit = model.min_activation_bytes(row_bytes)
            _lru_put(self._min_acts, key, hit, self._profile_cache_size)
            self.num_direct_probes += 1
        return hit <= memory.activation_capacity

    # ------------------------------------------------------------------
    def subgraph_cost(
        self, members: Iterable[str], memory: MemoryConfig | None = None
    ) -> SubgraphCost:
        """Price one subgraph under ``memory`` (cached)."""
        memory = memory or self.accel.memory
        key = (frozenset(members), _memory_key(memory))
        hit = _lru_get(self._costs, key)
        if hit is not None:
            return hit
        self.num_cost_calls += 1
        if self.collect_timings:
            # The profile may be derived inside this window; subtract its
            # time so the stage buckets stay mutually exclusive.
            started = time.perf_counter()
            profiled_before = self.timings["profile_s"]
            cost = self._price(self.profile(key[0]), memory)
            elapsed = time.perf_counter() - started
            nested = self.timings["profile_s"] - profiled_before
            self.timings["price_s"] += elapsed - nested
        else:
            cost = self._price(self.profile(key[0]), memory)
        _lru_put(self._costs, key, cost, self._cost_cache_size)
        return cost

    def _energy_rates(self, memory: MemoryConfig) -> EnergyRates:
        key = _memory_key(memory)
        rates = self._rates.get(key)
        if rates is None:
            rates = EnergyRates.for_memory(self.accel, memory)
            self._rates[key] = rates
        return rates

    def _price(self, profile: SubgraphProfile, memory: MemoryConfig) -> SubgraphCost:
        separate = memory.mode is BufferMode.SEPARATE
        rates = self._energy_rates(memory)
        compute = profile.macs / effective_macs_per_cycle(self.accel)
        bytes_per_cycle = dram_bytes_per_cycle(self.accel)
        activation_traffic = 2 * (
            profile.input_bytes + profile.member_activation_bytes
        )
        # In separate-buffer mode the weight budget is the same for every
        # tile option, so the greedy selection runs once, not per option.
        if separate:
            fixed_selection = cached_weight_selection(
                profile.layer_weights, memory.weight_buffer_bytes
            )
        best: SubgraphCost | None = None
        for option in profile.tile_options:
            if separate:
                if option.activation_bytes > memory.global_buffer_bytes:
                    continue
                cached_nodes, cached_bytes = fixed_selection
            else:
                budget = memory.shared_buffer_bytes - option.activation_bytes
                if budget < 0:
                    continue
                cached_nodes, cached_bytes = cached_weight_selection(
                    profile.layer_weights, budget
                )
            uncached = profile.weight_bytes - cached_bytes
            weight_ema = cached_bytes + uncached * option.num_elementary_ops
            ema = weight_ema + profile.io_bytes
            if best is not None and ema > best.ema_bytes:
                continue
            if (
                best is not None
                and ema == best.ema_bytes
                and option.tile_rows <= best.tile_rows
            ):
                continue
            energy = rates.breakdown(
                ema_bytes=ema,
                activation_traffic_bytes=activation_traffic,
                weight_write_bytes=weight_ema,
                weight_read_bytes=profile.weight_bytes * option.num_elementary_ops,
                macs=profile.macs,
            )
            best = SubgraphCost(
                profile=profile,
                feasible=True,
                tile_rows=option.tile_rows,
                num_elementary_ops=option.num_elementary_ops,
                cached_weight_nodes=cached_nodes,
                cached_weight_bytes=cached_bytes,
                weight_ema_bytes=weight_ema,
                ema_bytes=ema,
                energy=energy,
                compute_cycles=compute,
                latency_cycles=max(compute, ema / bytes_per_cycle),
            )
        if best is not None:
            return best
        return SubgraphCost(
            profile=profile,
            feasible=False,
            tile_rows=0,
            num_elementary_ops=0,
            cached_weight_nodes=(),
            cached_weight_bytes=0,
            weight_ema_bytes=0,
            ema_bytes=int(1e18),
            energy=None,
            compute_cycles=compute,
            latency_cycles=float("inf"),
        )

    # ------------------------------------------------------------------
    def trace(
        self,
        members: Iterable[str],
        memory: MemoryConfig | None = None,
        tile_width: int | None = None,
        max_ops: int | None = None,
    ):
        """Execute one subgraph with this evaluator's own pricing choices.

        Replays the memory behaviour using the tile size and
        weight-caching selection :meth:`subgraph_cost` chose, at the
        accelerator's ``bytes_per_element`` — one source of truth for
        the element width, so the trace and the analytic cost can never
        silently disagree on units. Returns a
        :class:`~repro.memory.trace.SubgraphTrace`.
        """
        from ..errors import CapacityError
        from ..memory.trace import trace_subgraph

        members = frozenset(members)  # may be a one-shot iterable
        memory = memory or self.accel.memory
        cost = self.subgraph_cost(members, memory)
        if not cost.feasible:
            raise CapacityError(
                "cannot trace an infeasible subgraph (no tile option fits)"
            )
        return trace_subgraph(
            self.graph,
            members,
            output_tile_rows=cost.tile_rows,
            cached_weight_nodes=cost.cached_weight_nodes,
            bytes_per_element=self.accel.bytes_per_element,
            tile_width=tile_width,
            max_ops=max_ops,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        subgraph_sets: Sequence[frozenset[str]],
        memory: MemoryConfig | None = None,
    ) -> PartitionCost:
        """Price a whole partition, given its subgraphs in schedule order."""
        memory = memory or self.accel.memory
        costs = [self.subgraph_cost(members, memory) for members in subgraph_sets]
        started = time.perf_counter() if self.collect_timings else 0.0
        feasible = True
        ema_total = 0
        energy_total = 0.0
        latency_total = 0.0
        io_bytes: list[int] = []
        weight_bytes: list[int] = []
        weight_ema_bytes: list[int] = []
        compute_seconds: list[float] = []
        frequency = self.accel.frequency_hz
        for cost in costs:
            feasible = feasible and cost.feasible
            ema_total += cost.ema_bytes
            energy_total += cost.energy_pj
            latency_total += cost.latency_cycles
            io_bytes.append(cost.profile.io_bytes)
            weight_bytes.append(cost.profile.weight_bytes)
            weight_ema_bytes.append(cost.weight_ema_bytes)
            compute_seconds.append(cost.compute_cycles / frequency)
        bandwidth = bandwidth_report(
            io_bytes=io_bytes,
            weight_bytes=weight_bytes,
            weight_ema_bytes=weight_ema_bytes,
            compute_seconds=compute_seconds,
        )
        result = PartitionCost(
            feasible=feasible,
            num_subgraphs=len(costs),
            ema_bytes=float(ema_total),
            energy_pj=energy_total,
            latency_cycles=latency_total,
            bandwidth=bandwidth,
            subgraphs=tuple(costs),
        )
        if self.collect_timings:
            self.timings["aggregate_s"] += time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Incremental (delta) evaluation: per-subgraph scalar aggregates.
    # ------------------------------------------------------------------
    def _store_summary(self, key: tuple, summary: tuple) -> None:
        """Install one summary under LRU discipline (and log it)."""
        _lru_put(self._summaries, key, summary, self._cost_cache_size)
        if self._record_summaries:
            self._summary_log.append((key, summary))

    def _subgraph_summary(
        self, members: frozenset[str], memory: MemoryConfig, mem_key: tuple
    ) -> tuple:
        key = (members, mem_key)
        hit = _lru_get(self._summaries, key)
        if hit is not None:
            return hit
        cost = self.subgraph_cost(members, memory)
        summary = (
            cost.feasible,
            cost.ema_bytes,
            cost.energy_pj,
            cost.latency_cycles,
        )
        self._store_summary(key, summary)
        return summary

    def summarize(
        self,
        subgraph_sets: Sequence[frozenset[str]],
        memory: MemoryConfig | None = None,
    ) -> PartitionSummary:
        """Scalar partition aggregates for the search loops (incremental).

        Per-subgraph scalars are cached, so pricing work is proportional
        to the subgraphs *not seen before* under this memory
        configuration — for GA offspring, the few cut points that differ
        from the parents. The sums run in schedule order, making every
        field bit-identical to :meth:`evaluate`'s.
        """
        memory = memory or self.accel.memory
        mem_key = _memory_key(memory)
        timed = self.collect_timings
        if timed:
            # Cold subgraphs profile and price inside this window; count
            # only the aggregation itself (buckets stay exclusive).
            started = time.perf_counter()
            nested_before = (
                self.timings["profile_s"] + self.timings["price_s"]
            )
        feasible = True
        ema_total = 0
        energy_total = 0.0
        latency_total = 0.0
        for members in subgraph_sets:
            ok, ema, energy_pj, latency = self._subgraph_summary(
                members, memory, mem_key
            )
            feasible = feasible and ok
            ema_total += ema
            energy_total += energy_pj
            latency_total += latency
        result = PartitionSummary(
            feasible=feasible,
            num_subgraphs=len(subgraph_sets),
            ema_bytes=float(ema_total),
            energy_pj=energy_total,
            latency_cycles=latency_total,
        )
        if timed:
            elapsed = time.perf_counter() - started
            nested = (
                self.timings["profile_s"] + self.timings["price_s"]
            ) - nested_before
            self.timings["aggregate_s"] += elapsed - nested
        return result

    # ------------------------------------------------------------------
    # Population-level batch pricing (tensorized; bit-identical).
    # ------------------------------------------------------------------
    def _population_memories(
        self,
        populations: Sequence[Sequence[frozenset[str]]],
        memories: "MemoryConfig | Sequence[MemoryConfig] | None",
    ) -> list[MemoryConfig]:
        """One memory per partition (broadcast a single/default config)."""
        if memories is None:
            memories = self.accel.memory
        if isinstance(memories, MemoryConfig):
            return [memories] * len(populations)
        return list(memories)

    def prime_summaries(
        self,
        populations: Sequence[Sequence[frozenset[str]]],
        memories: "MemoryConfig | Sequence[MemoryConfig] | None" = None,
    ) -> int:
        """Batch-price every unseen subgraph key across a population.

        Collects the distinct ``(subgraph, memory)`` keys of all
        partitions that are not in the summary cache yet, prices the
        profile-cold ones through :func:`repro.cost.batch.
        price_population` (shape-class tensor ops plus closed-form
        direct solves), and the profile-warm rest serially — then
        installs everything into the summary cache *in first-seen
        order*, exactly as a serial sweep would have. Subsequent
        :meth:`summarize` calls for these partitions are pure cache
        reads; semantics, drain/absorb warm-state, and LRU behaviour
        are unchanged, and every value is bit-identical to the serial
        path. Returns the number of keys priced.
        """
        mems = self._population_memories(populations, memories)
        order: list[tuple] = []
        seen: set[tuple] = set()
        mem_of: dict[tuple, MemoryConfig] = {}
        summaries = self._summaries
        for subgraph_sets, memory in zip(populations, mems):
            mem_key = _memory_key(memory)
            mem_of.setdefault(mem_key, memory)
            for members in subgraph_sets:
                key = (members, mem_key)
                if key in seen:
                    continue
                seen.add(key)
                if key in summaries:
                    self.num_batch_hits += 1
                    continue
                order.append(key)
        if not order:
            return 0
        self.num_batch_calls += 1
        timed = self.collect_timings
        if timed:
            # Serially-repriced keys bill their own profile/price
            # buckets inside this window; count only the batch work.
            started = time.perf_counter()
            nested_before = self.timings["profile_s"] + self.timings["price_s"]
        from .batch import price_population

        cold = [key for key in order if key[0] not in self._profiles]
        with span("evaluator.batch", keys=len(order), cold=len(cold)):
            priced = price_population(self, cold, mem_of)
            self.num_batch_priced += len(priced)
            for key in order:
                summary = priced.get(key)
                if summary is not None:
                    self._store_summary(key, summary)
                else:
                    self._subgraph_summary(key[0], mem_of[key[1]], key[1])
        if timed:
            elapsed = time.perf_counter() - started
            nested = (
                self.timings["profile_s"] + self.timings["price_s"]
            ) - nested_before
            self.timings["batch_s"] += elapsed - nested
        return len(order)

    def summarize_population(
        self,
        populations: Sequence[Sequence[frozenset[str]]],
        memories: "MemoryConfig | Sequence[MemoryConfig] | None" = None,
    ) -> list[PartitionSummary]:
        """Summaries for a whole population of partitions (batch-priced).

        Equivalent to ``[summarize(sets, memory) ...]`` — and
        bit-identical to it — but all unseen subgraph keys are priced
        first as one deduplicated, shape-class-batched unit via
        :meth:`prime_summaries`, so the per-partition aggregation runs
        entirely over cached scalars.
        """
        mems = self._population_memories(populations, memories)
        self.prime_summaries(populations, mems)
        return [
            self.summarize(subgraph_sets, memory)
            for subgraph_sets, memory in zip(populations, mems)
        ]

    # ------------------------------------------------------------------
    # Warm-state plumbing for parallel population evaluation.
    # ------------------------------------------------------------------
    def enable_summary_log(self) -> None:
        """Start recording fresh subgraph summaries for export."""
        self._record_summaries = True

    def drain_summary_log(self) -> list[tuple[tuple, tuple]]:
        """Return and clear the summaries recorded since the last drain."""
        out = self._summary_log
        self._summary_log = []
        return out

    def absorb_summaries(self, entries: Iterable[tuple[tuple, tuple]]) -> None:
        """Install subgraph summaries computed elsewhere (idempotent).

        Evaluation is pure, so an imported summary is exactly what this
        evaluator would have computed; absorbing skips the re-pricing.
        Absorbed entries are not re-logged.
        """
        summaries = self._summaries
        for key, summary in entries:
            if key not in summaries:
                _lru_put(summaries, key, summary, self._cost_cache_size)

    def export_summaries(self) -> list[tuple[tuple, tuple]]:
        """Every cached subgraph summary, oldest first (for persistence)."""
        return list(self._summaries.items())

    def stats(self) -> dict[str, float]:
        """Cache/timing counters (mergeable across worker processes)."""
        out: dict[str, float] = {
            "profile_calls": self.num_profile_calls,
            "cost_calls": self.num_cost_calls,
            "direct_probes": self.num_direct_probes,
            "batch_calls": self.num_batch_calls,
            "batch_priced": self.num_batch_priced,
            "batch_direct": self.num_batch_direct,
            "batch_hits": self.num_batch_hits,
        }
        out.update(self.timings)
        return out

    def absorb_stats(self, delta: dict[str, float]) -> None:
        """Fold worker counter deltas back into this evaluator."""
        self.num_profile_calls += int(delta.get("profile_calls", 0))
        self.num_cost_calls += int(delta.get("cost_calls", 0))
        self.num_direct_probes += int(delta.get("direct_probes", 0))
        self.num_batch_calls += int(delta.get("batch_calls", 0))
        self.num_batch_priced += int(delta.get("batch_priced", 0))
        self.num_batch_direct += int(delta.get("batch_direct", 0))
        self.num_batch_hits += int(delta.get("batch_hits", 0))
        for key in self.timings:
            self.timings[key] += delta.get(key, 0.0)
