"""The evaluation environment: partition + memory config -> cost.

This is the reproduction of the paper's "modified simulator that supports
the evaluation of latency and energy" (Sec 5.1.2). It memoizes aggressively
in two layers:

1. :meth:`Evaluator.profile` — memory-*independent* subgraph profiles
   (tilings, footprints, MAC/weight/IO byte counts). A genetic search
   re-visits the same subgraph sets constantly, and during co-exploration
   the same set is re-priced under many different capacities, so this
   cache does most of the work.
2. :meth:`Evaluator.subgraph_cost` — memory-*dependent* pricing of one
   profile (feasible tile choice, weight caching, EMA/energy/latency).

Both caches are bounded LRUs so long searches stay within memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..config import AcceleratorConfig, BufferMode, MemoryConfig
from ..graphs.graph import ComputationGraph
from .bandwidth import BandwidthReport, bandwidth_report
from .ema import (
    DEFAULT_TILE_CANDIDATES,
    SubgraphProfile,
    cached_weight_selection,
    profile_subgraph,
)
from .energy import EnergyBreakdown, subgraph_energy
from .latency import compute_cycles, subgraph_latency_cycles


@dataclass(frozen=True)
class SubgraphCost:
    """Cost of executing one subgraph under one memory configuration."""

    profile: SubgraphProfile
    feasible: bool
    tile_rows: int
    num_elementary_ops: int
    cached_weight_nodes: tuple[str, ...]
    cached_weight_bytes: int
    weight_ema_bytes: int
    ema_bytes: int
    energy: EnergyBreakdown | None
    compute_cycles: float
    latency_cycles: float

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj if self.energy is not None else float("inf")


@dataclass(frozen=True)
class PartitionCost:
    """Aggregate cost of a whole partition schedule."""

    feasible: bool
    num_subgraphs: int
    ema_bytes: float
    energy_pj: float
    latency_cycles: float
    bandwidth: BandwidthReport
    subgraphs: tuple[SubgraphCost, ...]


def _lru_get(cache: OrderedDict, key):
    try:
        value = cache[key]
    except KeyError:
        return None
    cache.move_to_end(key)
    return value


def _lru_put(cache: OrderedDict, key, value, maxsize: int) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > maxsize:
        cache.popitem(last=False)


def _memory_key(memory: MemoryConfig) -> tuple:
    if memory.mode is BufferMode.SHARED:
        return ("shared", memory.shared_buffer_bytes)
    return ("separate", memory.global_buffer_bytes, memory.weight_buffer_bytes)


class Evaluator:
    """Prices subgraphs and partitions of one graph on one accelerator."""

    def __init__(
        self,
        graph: ComputationGraph,
        accel: AcceleratorConfig | None = None,
        tile_candidates: tuple[int, ...] = DEFAULT_TILE_CANDIDATES,
        profile_cache_size: int = 100_000,
        cost_cache_size: int = 200_000,
    ) -> None:
        self.graph = graph
        self.accel = accel or AcceleratorConfig()
        self.tile_candidates = tile_candidates
        self._profiles: OrderedDict[frozenset[str], SubgraphProfile] = OrderedDict()
        self._min_footprints: OrderedDict[frozenset[str], int] = OrderedDict()
        self._costs: OrderedDict[tuple, SubgraphCost] = OrderedDict()
        self._profile_cache_size = profile_cache_size
        self._cost_cache_size = cost_cache_size
        self.num_profile_calls = 0
        self.num_cost_calls = 0

    # ------------------------------------------------------------------
    def profile(self, members: Iterable[str]) -> SubgraphProfile:
        """Memory-independent profile of a subgraph (cached)."""
        key = frozenset(members)
        hit = _lru_get(self._profiles, key)
        if hit is not None:
            return hit
        self.num_profile_calls += 1
        profile = profile_subgraph(
            self.graph,
            key,
            bytes_per_element=self.accel.bytes_per_element,
            tile_candidates=self.tile_candidates,
        )
        _lru_put(self._profiles, key, profile, self._profile_cache_size)
        return profile

    def min_footprint(self, members: Iterable[str]) -> int:
        """Cheapest activation footprint (finest tile only, cached).

        Enumeration pruning probes vast numbers of candidate sets; this
        derives a single finest-grained tiling instead of the full
        tile-option profile.
        """
        key = frozenset(members)
        hit = _lru_get(self._min_footprints, key)
        if hit is not None:
            return hit
        full = _lru_get(self._profiles, key)
        if full is not None:
            value = full.min_activation_bytes
        else:
            from ..execution.footprint import activation_footprint
            from ..execution.tiling import derive_tiling

            tiling = derive_tiling(self.graph, key, output_tile_rows=1)
            value = activation_footprint(
                self.graph, tiling, self.accel.bytes_per_element
            )
        _lru_put(self._min_footprints, key, value, self._profile_cache_size)
        return value

    # ------------------------------------------------------------------
    def subgraph_cost(
        self, members: Iterable[str], memory: MemoryConfig | None = None
    ) -> SubgraphCost:
        """Price one subgraph under ``memory`` (cached)."""
        memory = memory or self.accel.memory
        key = (frozenset(members), _memory_key(memory))
        hit = _lru_get(self._costs, key)
        if hit is not None:
            return hit
        self.num_cost_calls += 1
        cost = self._price(self.profile(key[0]), memory)
        _lru_put(self._costs, key, cost, self._cost_cache_size)
        return cost

    def _price(self, profile: SubgraphProfile, memory: MemoryConfig) -> SubgraphCost:
        best: SubgraphCost | None = None
        for option in profile.tile_options:
            if memory.mode is BufferMode.SEPARATE:
                if option.activation_bytes > memory.global_buffer_bytes:
                    continue
                budget = memory.weight_buffer_bytes
            else:
                budget = memory.shared_buffer_bytes - option.activation_bytes
                if budget < 0:
                    continue
            cached_nodes, cached_bytes = cached_weight_selection(
                profile.layer_weights, budget
            )
            uncached = profile.weight_bytes - cached_bytes
            weight_ema = cached_bytes + uncached * option.num_elementary_ops
            ema = weight_ema + profile.io_bytes
            if best is not None and ema > best.ema_bytes:
                continue
            if (
                best is not None
                and ema == best.ema_bytes
                and option.tile_rows <= best.tile_rows
            ):
                continue
            energy = subgraph_energy(
                self.accel,
                memory,
                ema_bytes=ema,
                activation_traffic_bytes=2
                * (profile.input_bytes + profile.member_activation_bytes),
                weight_write_bytes=weight_ema,
                weight_read_bytes=profile.weight_bytes * option.num_elementary_ops,
                macs=profile.macs,
            )
            best = SubgraphCost(
                profile=profile,
                feasible=True,
                tile_rows=option.tile_rows,
                num_elementary_ops=option.num_elementary_ops,
                cached_weight_nodes=cached_nodes,
                cached_weight_bytes=cached_bytes,
                weight_ema_bytes=weight_ema,
                ema_bytes=ema,
                energy=energy,
                compute_cycles=compute_cycles(self.accel, profile.macs),
                latency_cycles=subgraph_latency_cycles(self.accel, profile.macs, ema),
            )
        if best is not None:
            return best
        return SubgraphCost(
            profile=profile,
            feasible=False,
            tile_rows=0,
            num_elementary_ops=0,
            cached_weight_nodes=(),
            cached_weight_bytes=0,
            weight_ema_bytes=0,
            ema_bytes=int(1e18),
            energy=None,
            compute_cycles=compute_cycles(self.accel, profile.macs),
            latency_cycles=float("inf"),
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        subgraph_sets: Sequence[frozenset[str]],
        memory: MemoryConfig | None = None,
    ) -> PartitionCost:
        """Price a whole partition, given its subgraphs in schedule order."""
        memory = memory or self.accel.memory
        costs = [self.subgraph_cost(members, memory) for members in subgraph_sets]
        feasible = all(c.feasible for c in costs)
        frequency = self.accel.frequency_hz
        bandwidth = bandwidth_report(
            io_bytes=[c.profile.io_bytes for c in costs],
            weight_bytes=[c.profile.weight_bytes for c in costs],
            weight_ema_bytes=[c.weight_ema_bytes for c in costs],
            compute_seconds=[c.compute_cycles / frequency for c in costs],
        )
        return PartitionCost(
            feasible=feasible,
            num_subgraphs=len(costs),
            ema_bytes=float(sum(c.ema_bytes for c in costs)),
            energy_pj=sum(c.energy_pj for c in costs),
            latency_cycles=sum(c.latency_cycles for c in costs),
            bandwidth=bandwidth,
            subgraphs=tuple(costs),
        )
