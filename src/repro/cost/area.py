"""SRAM silicon-area model.

The paper quotes 1-2 mm^2/MB for 12nm SRAM; the accelerator config carries
the calibrated constant and this helper reports the footprint of a memory
configuration (used by reports, not by the optimization objective, which
penalizes capacity directly via Formula 2).
"""

from __future__ import annotations

from ..config import AcceleratorConfig, BufferMode, MemoryConfig


def buffer_area_mm2(accel: AcceleratorConfig, memory: MemoryConfig) -> float:
    """Total SRAM area of the configured buffers in mm^2."""
    if memory.mode is BufferMode.SHARED:
        return accel.sram_area_mm2(memory.shared_buffer_bytes)
    return accel.sram_area_mm2(memory.global_buffer_bytes) + accel.sram_area_mm2(
        memory.weight_buffer_bytes
    )
