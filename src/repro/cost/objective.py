"""Optimization objectives: Formula 1 (partition) and Formula 2 (co-opt).

Formula 1 sums a target metric over subgraphs; Formula 2 adds the total
buffer capacity with a preference weight ``alpha``:

    BUF_SIZE + alpha * sum_i Cost_M(subgraph_i)

with capacity in bytes and energy in picojoules (footnote 4), which puts
Table 1's costs in the 1e6-1e8 range at ``alpha = 0.002``.
"""

from __future__ import annotations

from enum import Enum

from typing import Union

from ..config import MemoryConfig
from .evaluator import PartitionCost, PartitionSummary

#: Either aggregate form works: the objectives only read the scalar
#: fields, which are bit-identical between the two.
PartitionAggregate = Union[PartitionCost, PartitionSummary]

#: The alpha used throughout the paper's co-exploration experiments.
DEFAULT_ALPHA = 0.002


class Metric(Enum):
    """Target metric ``M`` of the cost function."""

    EMA = "ema"
    ENERGY = "energy"
    LATENCY = "latency"


def metric_value(cost: PartitionAggregate, metric: Metric) -> float:
    """Extract the metric ``M`` from an evaluated partition."""
    if not cost.feasible:
        return float("inf")
    if metric is Metric.EMA:
        return cost.ema_bytes
    if metric is Metric.ENERGY:
        return cost.energy_pj
    return cost.latency_cycles


def partition_objective(cost: PartitionAggregate, metric: Metric = Metric.EMA) -> float:
    """Formula 1: the summed subgraph cost for a fixed hardware."""
    return metric_value(cost, metric)


def co_opt_objective(
    cost: PartitionAggregate,
    memory: MemoryConfig,
    alpha: float = DEFAULT_ALPHA,
    metric: Metric = Metric.ENERGY,
) -> float:
    """Formula 2: buffer capacity plus ``alpha`` times the mapping cost."""
    value = metric_value(cost, metric)
    if value == float("inf"):
        return float("inf")
    return memory.total_bytes + alpha * value
