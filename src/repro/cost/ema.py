"""Memory-independent subgraph profiling for external-memory-access costs.

For every subgraph the EMA model charges (Sec 4.1.1, 5.1.2):

* loading the weights of every member layer,
* loading the subgraph's input activations (tensors produced outside),
* storing the output activations (tensors consumed outside, or model
  outputs).

Weights are loaded **once** per subgraph only if they can stay cached in
the weight buffer across elementary operations; layers that do not fit are
re-streamed every elementary operation. The choice of output tile size
trades activation footprint (small tiles fit small buffers) against the
number of elementary operations (more operations mean more weight
re-streaming), so the profile precomputes one :class:`TileOption` per
candidate tile size and the memory-dependent evaluator picks the best
feasible one.

:func:`profile_subgraph` is the fast single-pass implementation: one
:class:`~repro.execution.tiling.TilingStructure` derivation prices all
tile candidates, and the per-layer byte/MAC aggregations run over the
graph's precomputed :class:`~repro.graphs.arrays.GraphArrays`.
:func:`profile_subgraph_reference` retains the naive implementation
(one full :func:`~repro.execution.tiling.derive_tiling` walk per
candidate, per-node generator sums) as the equivalence oracle — both
produce bit-identical :class:`SubgraphProfile` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TilingError
from ..execution.footprint import activation_footprint
from ..execution.tiling import TilingStructure, derive_tiling
from ..graphs.graph import ComputationGraph

#: Output-row tile sizes stage 1 may choose from (powers of two, as the
#: single-layer mapper would generate).
DEFAULT_TILE_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class TileOption:
    """One candidate output tile size and its memory behaviour."""

    tile_rows: int
    activation_bytes: int
    num_elementary_ops: int


@dataclass(frozen=True)
class SubgraphProfile:
    """Everything about a subgraph that does not depend on buffer sizes."""

    members: frozenset[str]
    input_bytes: int
    output_bytes: int
    weight_bytes: int
    macs: int
    member_activation_bytes: int
    layer_weights: tuple[tuple[str, int], ...]
    tile_options: tuple[TileOption, ...]
    #: Footprint of the smallest tile option, materialized at construction
    #: (memory-feasibility tests read it on every repair probe).
    min_activation_bytes: int = -1

    def __post_init__(self) -> None:
        if self.min_activation_bytes < 0:
            object.__setattr__(
                self,
                "min_activation_bytes",
                min(o.activation_bytes for o in self.tile_options),
            )

    @property
    def io_bytes(self) -> int:
        """Activation bytes exchanged with DRAM (inputs plus outputs)."""
        return self.input_bytes + self.output_bytes


def _interface_inputs(graph: ComputationGraph, members: frozenset[str]) -> tuple[str, ...]:
    """External producers whose tensors the subgraph loads from DRAM."""
    seen: list[str] = []
    for name in sorted(members):
        for parent in graph.predecessors(name):
            if parent not in members and parent not in seen:
                seen.append(parent)
    return tuple(sorted(seen))


def _writeback_nodes(graph: ComputationGraph, members: frozenset[str]) -> tuple[str, ...]:
    """Members whose outputs must go back to DRAM.

    A member is written back when some consumer lives outside the subgraph
    or when it is a model output (footnote 3 of the paper).
    """
    outputs = []
    for name in sorted(members):
        succs = graph.successors(name)
        if not succs or any(s not in members for s in succs):
            outputs.append(name)
    return tuple(outputs)


def _select_options(
    structure_options,
    tile_candidates: tuple[int, ...],
    max_height: int,
    stable_after: int | None = None,
) -> list[TileOption]:
    """Shared candidate-selection policy over ``(tile, act, ops)`` rows.

    Candidates larger than every member's output height are skipped after
    one saturating candidate, consecutive duplicates are dropped, and the
    scan stops at the first single-operation schedule (larger tiles only
    cost more memory for no fewer weight reloads). ``stable_after`` — the
    tile size beyond which every output-height cap binds, making the
    scheme constant — lets the fast path stop after the first such
    candidate; later ones would all be dropped as duplicates anyway.
    """
    options: list[TileOption] = []
    for tile_rows in tile_candidates:
        if options and tile_rows > max_height:
            break
        activation_bytes, num_ops = structure_options(tile_rows)
        option = TileOption(
            tile_rows=min(tile_rows, max_height),
            activation_bytes=activation_bytes,
            num_elementary_ops=num_ops,
        )
        previous = options[-1] if options else None
        if previous is None or (
            option.activation_bytes != previous.activation_bytes
            or option.num_elementary_ops != previous.num_elementary_ops
        ):
            options.append(option)
        if option.num_elementary_ops == 1:
            break
        if stable_after is not None and tile_rows >= stable_after:
            break
    return options


def profile_subgraph(
    graph: ComputationGraph,
    members: frozenset[str] | set[str],
    bytes_per_element: int = 1,
    tile_candidates: tuple[int, ...] = DEFAULT_TILE_CANDIDATES,
    structure: TilingStructure | None = None,
) -> SubgraphProfile:
    """Build the memory-independent profile of one subgraph (fast path).

    One :class:`TilingStructure` derivation serves every tile candidate
    (pass ``structure`` to reuse one derived earlier, e.g. by a
    feasibility probe), and all byte/MAC totals are array reductions over
    ``graph.arrays(bytes_per_element)``. A :class:`TilingError` from an
    individual candidate is fatal, since it indicates an inconsistent
    graph rather than a capacity problem.
    """
    members = frozenset(members)
    if structure is None:
        structure = TilingStructure(graph, members)
    arrays = graph.arrays(bytes_per_element)
    index = arrays.index

    member_indices = arrays.indices(members)
    succ_map = graph.successor_map()
    inputs = sorted(
        name
        for name, is_member in zip(structure.names, structure.is_member)
        if not is_member
    )
    outputs = [
        name
        for name in sorted(members)
        if not succ_map[name] or any(s not in members for s in succ_map[name])
    ]
    input_bytes = arrays.total(arrays.output_bytes, [index[n] for n in inputs])
    output_bytes = arrays.total(arrays.output_bytes, [index[n] for n in outputs])
    weight_bytes = arrays.total(arrays.weight_bytes, member_indices)
    macs = arrays.total(arrays.macs, member_indices)
    member_activation_bytes = arrays.total(arrays.output_bytes, member_indices)
    layer_weights = tuple(
        sorted(
            ((n, int(arrays.weight_bytes[index[n]])) for n in sorted(members)),
            key=lambda item: (-item[1], item[0]),
        )
    )
    max_height = max(
        int(arrays.heights[i]) for i in member_indices
    )

    local_row_bytes = [int(arrays.row_bytes[index[n]]) for n in structure.names]
    options = _select_options(
        lambda tile_rows: structure.option(tile_rows, local_row_bytes),
        tile_candidates,
        max_height,
        stable_after=structure.saturation,
    )
    if not options:
        raise TilingError(f"no tile candidates for subgraph {sorted(members)}")
    return SubgraphProfile(
        members=members,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        weight_bytes=weight_bytes,
        macs=macs,
        member_activation_bytes=member_activation_bytes,
        layer_weights=layer_weights,
        tile_options=tuple(options),
    )


def profile_subgraph_reference(
    graph: ComputationGraph,
    members: frozenset[str] | set[str],
    bytes_per_element: int = 1,
    tile_candidates: tuple[int, ...] = DEFAULT_TILE_CANDIDATES,
) -> SubgraphProfile:
    """Naive reference profiler: one full tiling walk per candidate.

    Retained verbatim from the pre-single-pass pipeline as the
    equivalence oracle for :func:`profile_subgraph` (the two must agree
    bit-for-bit) and as the baseline the evaluator benchmark measures
    speedups against.
    """
    members = frozenset(members)
    # Iterate members in sorted order everywhere: set order is
    # hash-seed dependent, and these reductions must be bit-identical
    # across processes (the docstring's equivalence-oracle contract).
    ordered = sorted(members)
    inputs = _interface_inputs(graph, members)
    outputs = _writeback_nodes(graph, members)
    input_bytes = sum(
        graph.layer(n).output_bytes(bytes_per_element) for n in inputs
    )
    output_bytes = sum(
        graph.layer(n).output_bytes(bytes_per_element) for n in outputs
    )
    weight_bytes = sum(graph.layer(n).weight_bytes for n in ordered)
    macs = sum(graph.layer(n).macs for n in ordered)
    member_activation_bytes = sum(
        graph.layer(n).output_bytes(bytes_per_element) for n in ordered
    )
    layer_weights = tuple(
        sorted(
            ((n, graph.layer(n).weight_bytes) for n in ordered),
            key=lambda item: (-item[1], item[0]),
        )
    )

    max_height = max(graph.layer(n).shape.height for n in ordered)

    def naive_option(tile_rows: int) -> tuple[int, int]:
        tiling = derive_tiling(graph, members, output_tile_rows=tile_rows)
        return (
            activation_footprint(graph, tiling, bytes_per_element),
            tiling.num_elementary_ops,
        )

    options = _select_options(naive_option, tile_candidates, max_height)
    if not options:
        raise TilingError(f"no tile candidates for subgraph {sorted(members)}")
    return SubgraphProfile(
        members=members,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        weight_bytes=weight_bytes,
        macs=macs,
        member_activation_bytes=member_activation_bytes,
        layer_weights=layer_weights,
        tile_options=tuple(options),
    )


def cached_weight_selection(
    layer_weights: tuple[tuple[str, int], ...], budget_bytes: int
) -> tuple[tuple[str, ...], int]:
    """Greedy weight-caching choice under a byte budget.

    Every cached byte saves the same ``num_ops - 1`` reloads, so the goal
    is simply to maximize cached bytes: take layers largest-first, then
    fill gaps with smaller ones.
    """
    cached: list[str] = []
    cached_bytes = 0
    for name, weight in layer_weights:
        if weight == 0:
            continue
        if cached_bytes + weight <= budget_bytes:
            cached.append(name)
            cached_bytes += weight
    return tuple(cached), cached_bytes
