"""Memory-independent subgraph profiling for external-memory-access costs.

For every subgraph the EMA model charges (Sec 4.1.1, 5.1.2):

* loading the weights of every member layer,
* loading the subgraph's input activations (tensors produced outside),
* storing the output activations (tensors consumed outside, or model
  outputs).

Weights are loaded **once** per subgraph only if they can stay cached in
the weight buffer across elementary operations; layers that do not fit are
re-streamed every elementary operation. The choice of output tile size
trades activation footprint (small tiles fit small buffers) against the
number of elementary operations (more operations mean more weight
re-streaming), so the profile precomputes one :class:`TileOption` per
candidate tile size and the memory-dependent evaluator picks the best
feasible one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TilingError
from ..execution.footprint import activation_footprint
from ..execution.tiling import derive_tiling
from ..graphs.graph import ComputationGraph

#: Output-row tile sizes stage 1 may choose from (powers of two, as the
#: single-layer mapper would generate).
DEFAULT_TILE_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class TileOption:
    """One candidate output tile size and its memory behaviour."""

    tile_rows: int
    activation_bytes: int
    num_elementary_ops: int


@dataclass(frozen=True)
class SubgraphProfile:
    """Everything about a subgraph that does not depend on buffer sizes."""

    members: frozenset[str]
    input_bytes: int
    output_bytes: int
    weight_bytes: int
    macs: int
    member_activation_bytes: int
    layer_weights: tuple[tuple[str, int], ...]
    tile_options: tuple[TileOption, ...]

    @property
    def io_bytes(self) -> int:
        """Activation bytes exchanged with DRAM (inputs plus outputs)."""
        return self.input_bytes + self.output_bytes

    @property
    def min_activation_bytes(self) -> int:
        """Footprint of the smallest tile option."""
        return min(o.activation_bytes for o in self.tile_options)


def _interface_inputs(graph: ComputationGraph, members: frozenset[str]) -> tuple[str, ...]:
    """External producers whose tensors the subgraph loads from DRAM."""
    seen: list[str] = []
    for name in members:
        for parent in graph.predecessors(name):
            if parent not in members and parent not in seen:
                seen.append(parent)
    return tuple(sorted(seen))


def _writeback_nodes(graph: ComputationGraph, members: frozenset[str]) -> tuple[str, ...]:
    """Members whose outputs must go back to DRAM.

    A member is written back when some consumer lives outside the subgraph
    or when it is a model output (footnote 3 of the paper).
    """
    outputs = []
    for name in sorted(members):
        succs = graph.successors(name)
        if not succs or any(s not in members for s in succs):
            outputs.append(name)
    return tuple(outputs)


def profile_subgraph(
    graph: ComputationGraph,
    members: frozenset[str] | set[str],
    bytes_per_element: int = 1,
    tile_candidates: tuple[int, ...] = DEFAULT_TILE_CANDIDATES,
) -> SubgraphProfile:
    """Build the memory-independent profile of one subgraph.

    Tile candidates larger than every member's output height are skipped
    (after including one saturating candidate); a :class:`TilingError`
    from an individual candidate is fatal, since it indicates an
    inconsistent graph rather than a capacity problem.
    """
    members = frozenset(members)
    inputs = _interface_inputs(graph, members)
    outputs = _writeback_nodes(graph, members)
    input_bytes = sum(
        graph.layer(n).output_bytes(bytes_per_element) for n in inputs
    )
    output_bytes = sum(
        graph.layer(n).output_bytes(bytes_per_element) for n in outputs
    )
    weight_bytes = sum(graph.layer(n).weight_bytes for n in members)
    macs = sum(graph.layer(n).macs for n in members)
    member_activation_bytes = sum(
        graph.layer(n).output_bytes(bytes_per_element) for n in members
    )
    layer_weights = tuple(
        sorted(
            ((n, graph.layer(n).weight_bytes) for n in members),
            key=lambda item: (-item[1], item[0]),
        )
    )

    max_height = max(graph.layer(n).shape.height for n in members)
    options: list[TileOption] = []
    for tile_rows in tile_candidates:
        if options and tile_rows > max_height:
            break
        tiling = derive_tiling(graph, members, output_tile_rows=tile_rows)
        option = TileOption(
            tile_rows=min(tile_rows, max_height),
            activation_bytes=activation_footprint(graph, tiling, bytes_per_element),
            num_elementary_ops=tiling.num_elementary_ops,
        )
        previous = options[-1] if options else None
        if previous is None or (
            option.activation_bytes != previous.activation_bytes
            or option.num_elementary_ops != previous.num_elementary_ops
        ):
            options.append(option)
        # Larger tiles past a single-operation schedule only cost more
        # memory for no fewer weight reloads — stop exploring.
        if option.num_elementary_ops == 1:
            break
    if not options:
        raise TilingError(f"no tile candidates for subgraph {sorted(members)}")
    return SubgraphProfile(
        members=members,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        weight_bytes=weight_bytes,
        macs=macs,
        member_activation_bytes=member_activation_bytes,
        layer_weights=layer_weights,
        tile_options=tuple(options),
    )


def cached_weight_selection(
    layer_weights: tuple[tuple[str, int], ...], budget_bytes: int
) -> tuple[tuple[str, ...], int]:
    """Greedy weight-caching choice under a byte budget.

    Every cached byte saves the same ``num_ops - 1`` reloads, so the goal
    is simply to maximize cached bytes: take layers largest-first, then
    fill gaps with smaller ones.
    """
    cached: list[str] = []
    cached_bytes = 0
    for name, weight in layer_weights:
        if weight == 0:
            continue
        if cached_bytes + weight <= budget_bytes:
            cached.append(name)
            cached_bytes += weight
    return tuple(cached), cached_bytes
