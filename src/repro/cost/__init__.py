"""Analytical cost simulator: EMA, energy, latency, bandwidth, area."""

from .ema import (
    SubgraphProfile,
    TileOption,
    profile_subgraph,
    profile_subgraph_reference,
)
from .evaluator import Evaluator, PartitionCost, PartitionSummary, SubgraphCost
from .objective import Metric, co_opt_objective, partition_objective
from .energy import EnergyBreakdown, subgraph_energy
from .latency import subgraph_latency_cycles
from .bandwidth import BandwidthReport, bandwidth_report
from .area import buffer_area_mm2
from .roofline import (
    RooflinePoint,
    RooflineReport,
    machine_balance,
    render_roofline,
    roofline_report,
)

__all__ = [
    "SubgraphProfile",
    "TileOption",
    "profile_subgraph",
    "profile_subgraph_reference",
    "Evaluator",
    "PartitionCost",
    "PartitionSummary",
    "SubgraphCost",
    "Metric",
    "co_opt_objective",
    "partition_objective",
    "EnergyBreakdown",
    "subgraph_energy",
    "subgraph_latency_cycles",
    "BandwidthReport",
    "bandwidth_report",
    "buffer_area_mm2",
    "RooflinePoint",
    "RooflineReport",
    "machine_balance",
    "roofline_report",
    "render_roofline",
]
