"""Tensorized cross-genome population pricing (bit-identical fast path).

:meth:`~repro.cost.evaluator.Evaluator.prime_summaries` collects every
*unseen* ``(subgraph, memory)`` key across a whole population and hands
the cold ones (no cached profile) to :func:`price_population` here. The
keys are deduped, grouped by
:attr:`~repro.execution.tiling.TilingStructure.signature` shape class,
and priced as stacked NumPy tensor ops over
:class:`~repro.graphs.arrays.GraphArrays`:

* per-subgraph byte/MAC totals (and the direct solve's footprint
  constants) become segmented prefix-sum reductions over one
  concatenated index vector spanning the whole population,
* each shape class solves stages 1-3 once (one representative; the
  others adopt its base solution) and prices all its subgraphs' tile
  candidates with a single row-bytes x tile-rows matrix product,
* classes passing the :class:`~repro.execution.tiling_batch.
  LinearTileModel` preconditions skip the candidate scan entirely — the
  best tile under a separate activation buffer is a closed-form pick.

Everything the batch layer cannot handle — NumPy absent, structure
derivation or balance validation failing (error messages are
per-subgraph), empty candidate lists — is simply left out of the result
dict; the caller reprices those keys serially in first-seen order, so
exceptions surface exactly where the serial path would raise them. For
keys that *are* priced, every arithmetic step mirrors the serial
pipeline operation-for-operation (scan classes are priced through the
real :func:`~repro.cost.ema._select_options` /
``Evaluator._price`` code over precomputed tables), keeping summaries
bit-identical to :mod:`repro.cost.reference`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

try:  # gated dependency: without numpy the serial path handles everything
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    _np = None

from ..config import BufferMode, MemoryConfig
from ..errors import TilingError
from ..execution.tiling import TilingStructure
from ..execution.tiling_batch import LinearTileModel, member_max_height, scan_table
from .ema import SubgraphProfile, _select_options
from .latency import dram_bytes_per_cycle, effective_macs_per_cycle

if TYPE_CHECKING:  # pragma: no cover
    from .evaluator import Evaluator

#: Summary scalars of a subgraph no tile option fits (mirrors the
#: infeasible ``SubgraphCost`` through ``ema_bytes``/``energy_pj``/
#: ``latency_cycles``).
_INFEASIBLE = (False, int(1e18), float("inf"), float("inf"))

#: Process-wide scan-path state per (shape signature, tile candidates):
#: ``(table_ops, column, x_matrix, max_height)``. Like the direct-solve
#: models, everything here is fully determined by the signature, so one
#: candidate-table walk serves every evaluator in the process.
_SCAN_STATES: OrderedDict[tuple, tuple] = OrderedDict()
_SCAN_CACHE_SIZE = 8192


def _prefix_diffs(values, bounds: list[int]) -> list[int]:
    """Per-segment sums of a 1-D array via one cumsum (exact in int64).

    The prefix-sum difference handles empty segments naturally, and
    ``int64`` is exact here: the largest population-wide running total
    (bytes or MACs across every subgraph of every genome) stays far
    below 2**63.
    """
    prefix = _np.zeros(len(values) + 1, dtype=_np.int64)
    _np.cumsum(values, dtype=_np.int64, out=prefix[1:])
    return [int(prefix[b] - prefix[a]) for a, b in zip(bounds, bounds[1:])]


def _segment_sums(values, index_lists: list[list[int]]) -> list[int]:
    """Exact per-list integer sums (one gather + cumsum over the concat)."""
    if _np is None:
        return [sum(int(values[i]) for i in lst) for lst in index_lists]
    flat: list[int] = []
    bounds = [0]
    for lst in index_lists:
        flat.extend(lst)
        bounds.append(len(flat))
    if not flat:
        return [0] * len(index_lists)
    return _prefix_diffs(values[_np.asarray(flat, dtype=_np.intp)], bounds)


def _greedy_cached_bytes(weights_desc: list[int], budget: int) -> int:
    """Cached byte total of the greedy weight selection.

    Mirrors :func:`~repro.cost.ema.cached_weight_selection` byte-for-byte
    without materializing node names: the greedy total depends only on
    the descending weight multiset (equal weights are interchangeable).
    """
    cached = 0
    for weight in weights_desc:
        if weight == 0:
            break  # sorted descending: everything after is zero too
        if cached + weight <= budget:
            cached += weight
    return cached


def price_population(
    evaluator: "Evaluator",
    cold_keys: list[tuple[frozenset[str], tuple]],
    memories: dict[tuple, MemoryConfig],
) -> dict[tuple, tuple]:
    """Price cold ``(members, mem_key)`` keys as stacked shape classes.

    Returns ``{key: (feasible, ema_bytes, energy_pj, latency_cycles)}``
    for every key the batch machinery handled; absent keys fall back to
    the caller's serial path. Side effects mirror serial pricing:
    derived structures and (for scan classes) full profiles land in the
    evaluator's LRU caches — the direct-solve path's speedup is exactly
    that it never builds a per-subgraph option table.
    """
    if _np is None or not cold_keys or not evaluator.tile_candidates:
        # No candidates means the serial profiler raises — let it.
        return {}
    from .evaluator import _lru_get, _lru_put

    graph = evaluator.graph
    accel = evaluator.accel
    arrays = graph.arrays(accel.bytes_per_element)
    index = arrays.index
    succ_map = graph.successor_map()
    tile_candidates = evaluator.tile_candidates
    compute_rate = effective_macs_per_cycle(accel)
    bytes_per_cycle = dram_bytes_per_cycle(accel)

    # Requested memory keys per member set (dedup preserves first-seen).
    wanted: dict[frozenset[str], list[tuple]] = {}
    for members, mem_key in cold_keys:
        wanted.setdefault(members, []).append(mem_key)

    # One structure per member set, grouped into shape classes. A set
    # whose derivation fails is skipped here so the serial fallback
    # raises the identical error at the identical (first-seen) key.
    structures: dict[frozenset[str], TilingStructure] = {}
    classes: dict[tuple, list[frozenset[str]]] = {}
    for members in wanted:
        structure = _lru_get(evaluator._structures, members)
        if structure is None:
            try:
                structure = TilingStructure(graph, members, solve_base=False)
            except TilingError:
                continue
        structures[members] = structure
        classes.setdefault(structure.signature, []).append(members)

    # One base solve + balance validation per class; a class whose
    # representative fails is skipped wholesale (the serial fallback
    # re-raises the identical per-subgraph error).
    valid: list[
        tuple[TilingStructure, list[frozenset[str]], LinearTileModel | None]
    ] = []
    for group in classes.values():
        rep = structures[group[0]]
        try:
            rep.base
        except TilingError:
            continue
        for members in group[1:]:
            structures[members].adopt_base(rep)
        for members in group:
            _lru_put(
                evaluator._structures,
                members,
                structures[members],
                evaluator._profile_cache_size,
            )
        valid.append((rep, group, evaluator._linear_model(rep)))

    # Global per-subgraph index lists -> one batched exact reduction per
    # quantity across the *whole population* (not per class: shape
    # classes are often singletons, and tiny per-class numpy calls cost
    # more than they save).
    slot: dict[frozenset[str], int] = {}
    names_rows: dict[frozenset[str], list[int]] = {}
    member_lists: list[list[int]] = []
    input_lists: list[list[int]] = []
    output_lists: list[list[int]] = []
    # Footprint constants A = rows . slope and B = rows . intercept for
    # every subgraph of a linear class ride the same batching: one row-
    # byte gather, two elementwise products against the concatenated
    # per-class slope/intercept vectors, one cumsum each.
    foot_slot: dict[frozenset[str], int] = {}
    foot_idx: list[int] = []
    foot_bounds = [0]
    slope_flat: list[int] = []
    icept_flat: list[int] = []
    for _, group, model in valid:
        for members in group:
            structure = structures[members]
            all_idx: list[int] = []
            mem_idx: list[int] = []
            inp_idx: list[int] = []
            for name, is_member in zip(structure.names, structure.is_member):
                i = index[name]
                all_idx.append(i)
                (mem_idx if is_member else inp_idx).append(i)
            names_rows[members] = all_idx
            slot[members] = len(member_lists)
            member_lists.append(mem_idx)
            input_lists.append(inp_idx)
            output_lists.append(
                [
                    index[n]
                    for n in sorted(members)
                    if not succ_map[n] or any(s not in members for s in succ_map[n])
                ]
            )
            if model is not None:
                foot_slot[members] = len(foot_bounds) - 1
                foot_idx.extend(all_idx)
                foot_bounds.append(len(foot_idx))
                slope_flat.extend(model.slope)
                icept_flat.extend(model.intercept)
    weight_totals = _segment_sums(arrays.weight_bytes, member_lists)
    mac_totals = _segment_sums(arrays.macs, member_lists)
    act_totals = _segment_sums(arrays.output_bytes, member_lists)
    input_totals = _segment_sums(arrays.output_bytes, input_lists)
    output_totals = _segment_sums(arrays.output_bytes, output_lists)
    if foot_idx:
        foot_rows = arrays.row_bytes[
            _np.asarray(foot_idx, dtype=_np.intp)
        ].astype(_np.int64)
        foot_slopes = _prefix_diffs(
            foot_rows * _np.asarray(slope_flat, dtype=_np.int64), foot_bounds
        )
        foot_icepts = _prefix_diffs(
            foot_rows * _np.asarray(icept_flat, dtype=_np.int64), foot_bounds
        )

    results: dict[tuple, tuple] = {}
    for rep, group, model in valid:
        # Scan-path state, built lazily: only classes with at least one
        # key the direct solve cannot take (no model, or a shared
        # buffer) pay for the candidate table and the footprint matmul.
        act_matrix = None
        table_ops: dict[int, int] = {}
        column: dict[int, int] = {}
        max_height = 0
        profiles: dict[frozenset[str], SubgraphProfile] = {}

        for g, members in enumerate(group):
            s = slot[members]
            weights_desc: list[int] | None = None
            for mem_key in wanted[members]:
                memory = memories[mem_key]
                separate = memory.mode is BufferMode.SEPARATE
                if model is not None and separate:
                    # GOMA-style direct solve: closed-form best candidate.
                    f = foot_slot[members]
                    choice = model.choose(
                        foot_slopes[f],
                        foot_icepts[f],
                        memory.global_buffer_bytes,
                    )
                    if choice < 0:
                        results[(members, mem_key)] = _INFEASIBLE
                        evaluator.num_batch_direct += 1
                        continue
                    if weights_desc is None:
                        weights_desc = sorted(
                            (int(w) for w in arrays.weight_bytes[member_lists[s]]),
                            reverse=True,
                        )
                    num_ops = model.kept_ops[choice]
                    weight_bytes = weight_totals[s]
                    cached = _greedy_cached_bytes(
                        weights_desc, memory.weight_buffer_bytes
                    )
                    weight_ema = cached + (weight_bytes - cached) * num_ops
                    ema = weight_ema + input_totals[s] + output_totals[s]
                    macs = mac_totals[s]
                    energy = evaluator._energy_rates(memory).breakdown(
                        ema_bytes=ema,
                        activation_traffic_bytes=2
                        * (input_totals[s] + act_totals[s]),
                        weight_write_bytes=weight_ema,
                        weight_read_bytes=weight_bytes * num_ops,
                        macs=macs,
                    ).total_pj
                    compute = macs / compute_rate
                    latency = max(compute, ema / bytes_per_cycle)
                    results[(members, mem_key)] = (True, ema, energy, latency)
                    evaluator.num_batch_direct += 1
                    continue

                # Class-batched scan: shared solves + one matmul, then
                # the *real* selection and pricing code over the table.
                profile = profiles.get(members)
                if profile is None:
                    if act_matrix is None:
                        # Candidates are non-empty, so the table (and the
                        # option list below) always hold the first one.
                        state_key = (rep.signature, tile_candidates)
                        state = _lru_get(_SCAN_STATES, state_key)
                        if state is None:
                            table = scan_table(rep, tile_candidates)
                            table_ops = {row[0]: row[2] for row in table}
                            column = {row[0]: j for j, row in enumerate(table)}
                            x_matrix = _np.asarray(
                                [row[1] for row in table], dtype=_np.int64
                            )
                            max_height = member_max_height(rep)
                            _lru_put(
                                _SCAN_STATES,
                                state_key,
                                (table_ops, column, x_matrix, max_height),
                                _SCAN_CACHE_SIZE,
                            )
                        else:
                            table_ops, column, x_matrix, max_height = state
                        rows = arrays.row_bytes[
                            _np.asarray(
                                [names_rows[m] for m in group], dtype=_np.intp
                            )
                        ]
                        act_matrix = rows @ x_matrix.T
                    acts = act_matrix[g]

                    def class_option(tile_rows: int, _acts=acts) -> tuple[int, int]:
                        return int(_acts[column[tile_rows]]), table_ops[tile_rows]

                    options = _select_options(
                        class_option,
                        tile_candidates,
                        max_height,
                        stable_after=rep.saturation,
                    )
                    profile = SubgraphProfile(
                        members=members,
                        input_bytes=input_totals[s],
                        output_bytes=output_totals[s],
                        weight_bytes=weight_totals[s],
                        macs=mac_totals[s],
                        member_activation_bytes=act_totals[s],
                        layer_weights=tuple(
                            sorted(
                                (
                                    (n, int(arrays.weight_bytes[index[n]]))
                                    for n in members
                                ),
                                key=lambda item: (-item[1], item[0]),
                            )
                        ),
                        tile_options=tuple(options),
                    )
                    profiles[members] = profile
                    _lru_put(
                        evaluator._profiles,
                        members,
                        profile,
                        evaluator._profile_cache_size,
                    )
                cost = evaluator._price(profile, memory)
                results[(members, mem_key)] = (
                    cost.feasible,
                    cost.ema_bytes,
                    cost.energy_pj,
                    cost.latency_cycles,
                )
    return results
