"""Latency model (Sec 5.1.2).

"The latency per subgraph depends on the maximum of the calculation and
external communication cycles": compute time is the MAC count over the
effective array throughput, communication time is the EMA byte count over
the per-core DRAM bandwidth, and the slower of the two bounds the
subgraph.
"""

from __future__ import annotations

from ..config import AcceleratorConfig


def effective_macs_per_cycle(accel: AcceleratorConfig) -> float:
    """Utilization-derated MAC throughput of the PE array."""
    return accel.macs_per_cycle * accel.pe_utilization


def dram_bytes_per_cycle(accel: AcceleratorConfig) -> float:
    """DRAM link bytes moved per core cycle."""
    return accel.dram_bandwidth / accel.frequency_hz


def compute_cycles(accel: AcceleratorConfig, macs: int) -> float:
    """Cycles the PE array needs for ``macs`` multiply-accumulates."""
    return macs / effective_macs_per_cycle(accel)


def dram_cycles(accel: AcceleratorConfig, ema_bytes: int) -> float:
    """Cycles to move ``ema_bytes`` over the core's DRAM link."""
    return ema_bytes / dram_bytes_per_cycle(accel)


def subgraph_latency_cycles(
    accel: AcceleratorConfig, macs: int, ema_bytes: int
) -> float:
    """Latency of one subgraph: max of compute and communication."""
    return max(compute_cycles(accel, macs), dram_cycles(accel, ema_bytes))
