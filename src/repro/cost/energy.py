"""Energy model: DRAM + SRAM + compute (calibration in DESIGN.md).

The energy of a subgraph execution combines

* DRAM traffic at 12.5 pJ/bit (every EMA byte),
* SRAM traffic at a capacity-dependent per-byte cost: activations are
  written once and read once through the global buffer; weights are
  written once per DRAM load and read once per elementary operation,
* MAC energy per multiply-accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig, MemoryConfig


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component energy of one subgraph execution, in picojoules."""

    dram_pj: float
    sram_activation_pj: float
    sram_weight_pj: float
    mac_pj: float
    crossbar_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.dram_pj
            + self.sram_activation_pj
            + self.sram_weight_pj
            + self.mac_pj
            + self.crossbar_pj
        )


@dataclass(frozen=True)
class EnergyRates:
    """Precomputed per-byte/per-MAC energy rates for one (accel, memory).

    The capacity-dependent SRAM rates involve square roots; the pricing
    loop evaluates many tile options (and many subgraphs) under the same
    memory configuration, so the rates are hoisted out and reused. The
    resulting breakdowns are bit-identical to :func:`subgraph_energy`
    (same factors, same multiplication order).
    """

    dram_pj_per_byte: float
    act_pj_per_byte: float
    wgt_pj_per_byte: float
    mac_pj: float

    @staticmethod
    def for_memory(accel: AcceleratorConfig, memory: MemoryConfig) -> "EnergyRates":
        return EnergyRates(
            dram_pj_per_byte=accel.dram_pj_per_byte,
            act_pj_per_byte=accel.sram_pj_per_byte(memory.activation_capacity),
            wgt_pj_per_byte=accel.sram_pj_per_byte(memory.weight_capacity),
            mac_pj=accel.mac_pj,
        )

    def breakdown(
        self,
        ema_bytes: int,
        activation_traffic_bytes: int,
        weight_write_bytes: int,
        weight_read_bytes: int,
        macs: int,
    ) -> EnergyBreakdown:
        return EnergyBreakdown(
            dram_pj=ema_bytes * self.dram_pj_per_byte,
            sram_activation_pj=activation_traffic_bytes * self.act_pj_per_byte,
            sram_weight_pj=(weight_write_bytes + weight_read_bytes)
            * self.wgt_pj_per_byte,
            mac_pj=macs * self.mac_pj,
        )


def subgraph_energy(
    accel: AcceleratorConfig,
    memory: MemoryConfig,
    ema_bytes: int,
    activation_traffic_bytes: int,
    weight_write_bytes: int,
    weight_read_bytes: int,
    macs: int,
) -> EnergyBreakdown:
    """Energy of one subgraph execution.

    ``activation_traffic_bytes`` should already count both the write and
    the read of each activation byte moving through the global buffer;
    ``weight_write_bytes`` is the DRAM-side fill traffic and
    ``weight_read_bytes`` the per-operation read traffic.
    """
    return EnergyRates.for_memory(accel, memory).breakdown(
        ema_bytes=ema_bytes,
        activation_traffic_bytes=activation_traffic_bytes,
        weight_write_bytes=weight_write_bytes,
        weight_read_bytes=weight_read_bytes,
        macs=macs,
    )
