"""Roofline classification of subgraphs: compute- versus memory-bound.

The latency model already takes ``max(compute, communication)`` per
subgraph (Sec 5.1.2); this module names the two regimes. A subgraph's
*arithmetic intensity* is its MACs per byte of external traffic; the
platform's *machine balance* is peak MACs per second over DRAM bytes per
second. Intensity below the balance means the DRAM link, not the PE
array, bounds the subgraph — exactly the condition a larger buffer (or a
better partition) relieves, which is why the roofline view makes Cocco's
wins legible: good partitions move subgraphs from the memory-bound slope
onto the compute roof.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AcceleratorConfig
from .evaluator import PartitionCost, SubgraphCost


@dataclass(frozen=True)
class RooflinePoint:
    """One subgraph in roofline coordinates."""

    members: frozenset[str]
    arithmetic_intensity: float  # MACs per EMA byte
    attained_macs_per_cycle: float
    memory_bound: bool


@dataclass(frozen=True)
class RooflineReport:
    """Roofline classification of a whole partition."""

    machine_balance: float  # MACs/cycle per byte/cycle
    peak_macs_per_cycle: float
    points: tuple[RooflinePoint, ...]

    @property
    def memory_bound_fraction(self) -> float:
        """Share of subgraphs sitting under the memory slope."""
        if not self.points:
            return 0.0
        bound = sum(1 for p in self.points if p.memory_bound)
        return bound / len(self.points)

    @property
    def attained_fraction_of_peak(self) -> float:
        """Mean attained throughput over the compute roof."""
        if not self.points:
            return 0.0
        mean = sum(p.attained_macs_per_cycle for p in self.points) / len(
            self.points
        )
        return mean / self.peak_macs_per_cycle


def machine_balance(accel: AcceleratorConfig) -> float:
    """Peak MACs per DRAM byte: the roofline ridge point."""
    bytes_per_cycle = accel.dram_bandwidth / accel.frequency_hz
    return accel.macs_per_cycle * accel.pe_utilization / bytes_per_cycle


def classify_subgraph(
    cost: SubgraphCost, accel: AcceleratorConfig
) -> RooflinePoint:
    """Place one priced subgraph on the roofline."""
    ema = max(1, cost.ema_bytes)
    intensity = cost.profile.macs / ema
    latency = max(cost.latency_cycles, 1e-12)
    attained = cost.profile.macs / latency
    return RooflinePoint(
        members=cost.profile.members,
        arithmetic_intensity=intensity,
        attained_macs_per_cycle=attained,
        memory_bound=intensity < machine_balance(accel),
    )


def roofline_report(
    cost: PartitionCost, accel: AcceleratorConfig
) -> RooflineReport:
    """Classify every subgraph of an evaluated partition.

    The intensity/attained coordinates are computed as one array
    operation per axis over the partition's per-subgraph constants
    (falling back to scalar loops without NumPy); IEEE-754 float64
    division keeps the points bit-identical either way.
    """
    feasible = [sub for sub in cost.subgraphs if sub.feasible]
    balance = machine_balance(accel)
    try:
        import numpy as np
    except ImportError:
        np = None
    if np is not None and feasible:
        macs = np.array([s.profile.macs for s in feasible], dtype=np.float64)
        ema = np.maximum(
            1.0, np.array([s.ema_bytes for s in feasible], dtype=np.float64)
        )
        latency = np.maximum(
            np.array([s.latency_cycles for s in feasible], dtype=np.float64),
            1e-12,
        )
        intensity = macs / ema
        attained = macs / latency
        points = tuple(
            RooflinePoint(
                members=sub.profile.members,
                arithmetic_intensity=float(intensity[i]),
                attained_macs_per_cycle=float(attained[i]),
                memory_bound=bool(intensity[i] < balance),
            )
            for i, sub in enumerate(feasible)
        )
    else:
        points = tuple(classify_subgraph(sub, accel) for sub in feasible)
    return RooflineReport(
        machine_balance=balance,
        peak_macs_per_cycle=accel.macs_per_cycle * accel.pe_utilization,
        points=points,
    )


def render_roofline(report: RooflineReport, width: int = 50) -> str:
    """One line per subgraph: intensity, regime, attained/peak bar."""
    lines = [
        f"machine balance: {report.machine_balance:.1f} MACs/byte; "
        f"{report.memory_bound_fraction * 100:.0f}% of subgraphs memory-bound"
    ]
    for point in report.points:
        share = point.attained_macs_per_cycle / report.peak_macs_per_cycle
        bar = "#" * max(1, round(min(1.0, share) * width))
        regime = "MEM" if point.memory_bound else "CMP"
        lines.append(
            f"  [{regime}] AI={point.arithmetic_intensity:8.1f} "
            f"|{bar:<{width}}| {share * 100:5.1f}% of peak "
            f"({len(point.members)} layers)"
        )
    return "\n".join(lines)
