"""The retained naive evaluation pipeline (equivalence oracle).

The fast pipeline in :mod:`repro.cost.evaluator` must price partitions
*bit-identically* to the straightforward implementation it replaced.
This module keeps that implementation alive in two forms:

* :func:`price_subgraph_reference` / :func:`evaluate_partition_reference`
  — cache-free, loop-based pricing built on
  :func:`~repro.cost.ema.profile_subgraph_reference` (one full
  :func:`~repro.execution.tiling.derive_tiling` walk per tile candidate)
  and the original per-option weight-selection/energy computation.
  ``tests/cost/test_fast_equivalence.py`` compares these against the
  fast pipeline on randomized graphs, partitions, and memory configs.
* :class:`ReferenceEvaluator` — a drop-in :class:`~repro.cost.evaluator.
  Evaluator` that reproduces the *pre-single-pass pipeline's* behaviour
  (LRU caches included, but naive profiling, full pricing on repair
  probes, and a complete :class:`~repro.cost.evaluator.PartitionCost`
  per genome). ``benchmarks/bench_evaluator.py`` measures the fast
  pipeline's speedup against it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..config import AcceleratorConfig, BufferMode, MemoryConfig
from ..graphs.graph import ComputationGraph
from .bandwidth import bandwidth_report
from .ema import (
    DEFAULT_TILE_CANDIDATES,
    SubgraphProfile,
    cached_weight_selection,
    profile_subgraph_reference,
)
from .energy import subgraph_energy
from .evaluator import (
    Evaluator,
    PartitionCost,
    PartitionSummary,
    SubgraphCost,
    _lru_get,
    _lru_put,
)
from .latency import compute_cycles, subgraph_latency_cycles


def price_subgraph_reference(
    accel: AcceleratorConfig,
    profile: SubgraphProfile,
    memory: MemoryConfig,
) -> SubgraphCost:
    """Original tile-option pricing loop, nothing hoisted or cached."""
    best: SubgraphCost | None = None
    for option in profile.tile_options:
        if memory.mode is BufferMode.SEPARATE:
            if option.activation_bytes > memory.global_buffer_bytes:
                continue
            budget = memory.weight_buffer_bytes
        else:
            budget = memory.shared_buffer_bytes - option.activation_bytes
            if budget < 0:
                continue
        cached_nodes, cached_bytes = cached_weight_selection(
            profile.layer_weights, budget
        )
        uncached = profile.weight_bytes - cached_bytes
        weight_ema = cached_bytes + uncached * option.num_elementary_ops
        ema = weight_ema + profile.io_bytes
        if best is not None and ema > best.ema_bytes:
            continue
        if (
            best is not None
            and ema == best.ema_bytes
            and option.tile_rows <= best.tile_rows
        ):
            continue
        energy = subgraph_energy(
            accel,
            memory,
            ema_bytes=ema,
            activation_traffic_bytes=2
            * (profile.input_bytes + profile.member_activation_bytes),
            weight_write_bytes=weight_ema,
            weight_read_bytes=profile.weight_bytes * option.num_elementary_ops,
            macs=profile.macs,
        )
        best = SubgraphCost(
            profile=profile,
            feasible=True,
            tile_rows=option.tile_rows,
            num_elementary_ops=option.num_elementary_ops,
            cached_weight_nodes=cached_nodes,
            cached_weight_bytes=cached_bytes,
            weight_ema_bytes=weight_ema,
            ema_bytes=ema,
            energy=energy,
            compute_cycles=compute_cycles(accel, profile.macs),
            latency_cycles=subgraph_latency_cycles(accel, profile.macs, ema),
        )
    if best is not None:
        return best
    return SubgraphCost(
        profile=profile,
        feasible=False,
        tile_rows=0,
        num_elementary_ops=0,
        cached_weight_nodes=(),
        cached_weight_bytes=0,
        weight_ema_bytes=0,
        ema_bytes=int(1e18),
        energy=None,
        compute_cycles=compute_cycles(accel, profile.macs),
        latency_cycles=float("inf"),
    )


def evaluate_partition_reference(
    graph: ComputationGraph,
    accel: AcceleratorConfig,
    subgraph_sets: Sequence[frozenset[str]],
    memory: MemoryConfig | None = None,
    tile_candidates: tuple[int, ...] = DEFAULT_TILE_CANDIDATES,
) -> PartitionCost:
    """Cache-free partition pricing with the original generator sums."""
    memory = memory or accel.memory
    costs = [
        price_subgraph_reference(
            accel,
            profile_subgraph_reference(
                graph,
                members,
                bytes_per_element=accel.bytes_per_element,
                tile_candidates=tile_candidates,
            ),
            memory,
        )
        for members in subgraph_sets
    ]
    feasible = all(c.feasible for c in costs)
    frequency = accel.frequency_hz
    bandwidth = bandwidth_report(
        io_bytes=[c.profile.io_bytes for c in costs],
        weight_bytes=[c.profile.weight_bytes for c in costs],
        weight_ema_bytes=[c.weight_ema_bytes for c in costs],
        compute_seconds=[c.compute_cycles / frequency for c in costs],
    )
    return PartitionCost(
        feasible=feasible,
        num_subgraphs=len(costs),
        ema_bytes=float(sum(c.ema_bytes for c in costs)),
        energy_pj=sum(c.energy_pj for c in costs),
        latency_cycles=sum(c.latency_cycles for c in costs),
        bandwidth=bandwidth,
        subgraphs=tuple(costs),
    )


class ReferenceEvaluator(Evaluator):
    """Pre-single-pass pipeline behaviour behind the Evaluator interface.

    Profiles are derived naively (one tiling walk per tile candidate),
    pricing runs the original un-hoisted loop, repair probes pay for full
    pricing, and every partition evaluation assembles the complete
    :class:`PartitionCost` including the bandwidth report. Results are
    bit-identical to :class:`Evaluator`; only the work per call differs.
    """

    def profile(self, members: Iterable[str]) -> SubgraphProfile:
        key = frozenset(members)
        hit = _lru_get(self._profiles, key)
        if hit is not None:
            return hit
        self.num_profile_calls += 1
        profile = profile_subgraph_reference(
            self.graph,
            key,
            bytes_per_element=self.accel.bytes_per_element,
            tile_candidates=self.tile_candidates,
        )
        _lru_put(self._profiles, key, profile, self._profile_cache_size)
        return profile

    def _price(self, profile: SubgraphProfile, memory: MemoryConfig) -> SubgraphCost:
        return price_subgraph_reference(self.accel, profile, memory)

    def feasible(
        self, members: Iterable[str], memory: MemoryConfig | None = None
    ) -> bool:
        # Pre-PR repair probes priced the candidate in full.
        return self.subgraph_cost(members, memory).feasible

    def summarize(
        self,
        subgraph_sets: Sequence[frozenset[str]],
        memory: MemoryConfig | None = None,
    ) -> PartitionSummary:
        # Pre-PR genome evaluation always built the full PartitionCost.
        cost = self.evaluate(subgraph_sets, memory)
        return PartitionSummary(
            feasible=cost.feasible,
            num_subgraphs=cost.num_subgraphs,
            ema_bytes=cost.ema_bytes,
            energy_pj=cost.energy_pj,
            latency_cycles=cost.latency_cycles,
        )
