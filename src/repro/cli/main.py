"""Top-level argument parser and dispatch for ``python -m repro``."""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError
from ..experiments.common import SCALES
from . import commands


def _add_matrix_flags(parser: argparse.ArgumentParser) -> None:
    """Campaign-matrix flags shared by worker/dash/export-metrics.

    ``--networks`` stays optional on all three: omitting it reads the
    coordinator's ``campaign.json`` manifest from the registry instead.
    """
    parser.add_argument("--networks", default=None,
                        help="comma list of zoo models; omit to read "
                             "the coordinator's campaign.json manifest")
    parser.add_argument("--modes", default="separate")
    parser.add_argument("--metrics", default="energy")
    parser.add_argument("--schemes", default="cocco")
    parser.add_argument("--bytes-per-element", default="1")
    parser.add_argument("--alphas", default="0.002")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=int, default=None,
                        help="campaign sample budget (omit to read the "
                             "manifest)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the full CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Cocco reproduction: graph-level memory optimization and "
            "hardware-mapping co-exploration (Tan, Zhu & Ma, ASPLOS 2024)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo")

    describe = sub.add_parser("describe", help="show a model's layer table")
    describe.add_argument("model")
    describe.add_argument("--limit", type=int, default=None,
                          help="show only the first N layers")

    mapping = sub.add_parser("map", help="map layers onto the PE array")
    mapping.add_argument("model")
    mapping.add_argument("--limit", type=int, default=None,
                         help="show only the first N layers")

    partition = sub.add_parser("partition", help="partition a model")
    partition.add_argument("model")
    partition.add_argument("--method", choices=commands._PARTITIONERS,
                           default="cocco")
    partition.add_argument("--metric", choices=("ema", "energy"), default="ema")
    partition.add_argument("--glb", help="global buffer size (e.g. 1MB)")
    partition.add_argument("--wgt", help="weight buffer size (e.g. 1152KB)")
    partition.add_argument("--shared", help="shared buffer size (exclusive)")
    partition.add_argument("--scale", choices=sorted(SCALES), default="quick")
    partition.add_argument("--seed", type=int, default=0)
    partition.add_argument("--show-groups", action="store_true",
                           help="print each subgraph's member layers")
    partition.add_argument("--chart", action="store_true",
                           help="bar chart of subgraph sizes")

    tiling = sub.add_parser("tiling", help="derive a subgraph tiling scheme")
    tiling.add_argument("model")
    tiling.add_argument("--layers", required=True,
                        help="comma list, 'a..b' spans, or 'all'")
    tiling.add_argument("--tile", type=int, default=1,
                        help="output tile rows (stage-1 choice)")

    trace = sub.add_parser("trace", help="replay a subgraph's memory trace")
    trace.add_argument("model")
    trace.add_argument("--layers", required=True,
                       help="comma list, 'a..b' spans, or 'all'")
    trace.add_argument("--tile", type=int, default=1)
    trace.add_argument("--bpe", type=int, default=1,
                       help="bytes per element (must match the pricing "
                            "config; the trace records it)")
    trace.add_argument("--ops", type=int, default=None,
                       help="truncate after N elementary operations")
    trace.add_argument("--snapshots", type=int, default=4,
                       help="memory snapshots to render")

    dse = sub.add_parser("dse", help="hardware-mapping co-exploration")
    dse.add_argument("model")
    dse.add_argument("--mode", choices=("separate", "shared"),
                     default="separate")
    dse.add_argument("--method", choices=commands._DSE_METHODS, default="cocco")
    dse.add_argument("--metric", choices=("ema", "energy"), default="energy")
    dse.add_argument("--alpha", type=float, default=0.002)
    dse.add_argument("--scale", choices=sorted(SCALES), default="quick")
    dse.add_argument("--seed", type=int, default=0)
    dse.add_argument("--workers", type=int, default=1,
                     help="evaluation worker processes (1 = serial; "
                          "results are identical for any value)")
    dse.add_argument("--profile-timings", action="store_true",
                     help="print a per-stage evaluation timing breakdown "
                          "(profile / price / aggregate / other) after the run")

    pareto = sub.add_parser(
        "pareto", help="multi-objective capacity/metric frontier (NSGA-II)"
    )
    pareto.add_argument("model")
    pareto.add_argument("--mode", choices=("separate", "shared"),
                        default="shared")
    pareto.add_argument("--metric", choices=("ema", "energy"),
                        default="energy")
    pareto.add_argument("--scale", choices=sorted(SCALES), default="quick")
    pareto.add_argument("--seed", type=int, default=0)
    pareto.add_argument("--workers", type=int, default=1,
                        help="evaluation worker processes (1 = serial; "
                             "results are identical for any value)")
    pareto.add_argument("--profile-timings", action="store_true",
                        help="print a per-stage evaluation timing breakdown "
                             "(profile / price / aggregate / other) after the run")
    pareto.add_argument("--chart", action="store_true",
                        help="ASCII scatter of the frontier")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table or figure"
    )
    experiment.add_argument("id", help="fig3, fig11..fig14, table1..table3")
    experiment.add_argument("--scale", choices=sorted(SCALES), default="quick")
    experiment.add_argument("--workers", type=int, default=1,
                            help="evaluation worker processes for the "
                                 "search loops (1 = serial)")
    experiment.add_argument("--export", help="write the result to CSV/JSON")

    suite = sub.add_parser(
        "suite",
        help="run a durable, sharded, resumable experiment campaign",
    )
    suite.add_argument("--networks",
                       help="comma list of zoo models (matrix dimension); "
                            "required except with --gc, or with --status "
                            "when the registry holds a campaign manifest")
    suite.add_argument("--modes", default="separate",
                       help="comma list of buffer modes: separate,shared")
    suite.add_argument("--metrics", default="energy",
                       help="comma list of metrics: ema,energy")
    suite.add_argument("--schemes", default="cocco",
                       help="comma list of schemes: "
                            "cocco,rs,gs,sa,nsga,islands")
    suite.add_argument("--bytes-per-element", default="1",
                       help="comma list of element widths in bytes")
    suite.add_argument("--alphas", default="0.002",
                       help="comma list of Formula 2 alphas")
    suite.add_argument("--scale", choices=sorted(SCALES), default="quick")
    suite.add_argument("--seed", type=int, default=0,
                       help="campaign seed; every cell's seed derives "
                            "from it plus the cell's stable key")
    suite.add_argument("--workers", type=int, default=1,
                       help="worker processes cells are sharded across")
    suite.add_argument("--registry", default="runs-registry",
                       help="run-registry directory (created if missing)")
    suite.add_argument("--transport", default="fs",
                       help="registry transport: 'fs' (the --registry "
                            "directory) or an object-store URI like "
                            "s3://host:port/bucket (the URI becomes the "
                            "registry; --registry then only anchors "
                            "local outputs)")
    suite.add_argument("--max-rounds", type=int, default=3,
                       help="retry rounds after worker-process deaths")
    suite.add_argument("--report-only", action="store_true",
                       help="merge and print the registry's current "
                            "results without running anything")
    suite.add_argument("--export", help="also write the merged report "
                                        "to this CSV/JSON path")
    suite.add_argument("--budget", type=int, default=None,
                       help="campaign-wide sample budget: cells get "
                            "deterministic per-cell allocations and "
                            "unspent samples are re-granted from "
                            "converged cells to unconverged ones")
    suite.add_argument("--distributed", action="store_true",
                       help="coordinator mode: enqueue the campaign "
                            "manifest, spawn --workers local `repro "
                            "worker` processes, watch lease/checkpoint "
                            "state, reclaim expired leases, and merge "
                            "the final report")
    suite.add_argument("--ttl", type=float, default=30.0,
                       help="lease TTL in seconds (distributed mode): "
                            "a worker silent this long is presumed dead "
                            "and its cells are reclaimed")
    suite.add_argument("--poll", type=float, default=1.0,
                       help="coordinator/worker poll interval (s)")
    suite.add_argument("--status-interval", type=float, default=10.0,
                       help="seconds between live status renders in "
                            "distributed mode")
    suite.add_argument("--timeout", type=float, default=None,
                       help="abort the distributed campaign after this "
                            "many seconds (default: wait forever)")
    suite.add_argument("--autoscale", action="store_true",
                       help="elastic fleet (distributed mode): spawn "
                            "workers toward the live unclaimed-cell "
                            "queue depth instead of a fixed --workers "
                            "count; idle workers retire on their own")
    suite.add_argument("--min-workers", type=int, default=0,
                       help="elastic fleet floor (with --autoscale)")
    suite.add_argument("--max-workers", type=int, default=4,
                       help="elastic fleet ceiling (with --autoscale)")
    suite.add_argument("--worker-max-idle", type=float, default=None,
                       help="idle seconds before an elastic worker "
                            "retires (default: derived from --poll)")
    suite.add_argument("--eval-workers", type=int, default=None,
                       help="evaluation fan-out *inside* each cell "
                            "(bit-identical for any value)")
    suite.add_argument("--status", action="store_true",
                       help="print the live campaign status table and "
                            "exit (no work is run)")
    suite.add_argument("--format", choices=("text", "json"),
                       default="text",
                       help="--status output format: the human table, "
                            "or the full aggregated campaign view as "
                            "JSON (same numbers the dashboard and "
                            "metrics exporter read)")
    suite.add_argument("--metrics-out",
                       help="after the run (or with --status), export "
                            "the campaign metrics snapshot to "
                            "PREFIX.prom + PREFIX.json")
    suite.add_argument("--gc", action="store_true",
                       help="drop stale checkpoint/lease files of "
                            "completed runs in --registry, report "
                            "reclaimed bytes, and exit")

    worker = sub.add_parser(
        "worker",
        help="long-running campaign worker: lease cells from a shared "
             "registry, execute and checkpoint them, heartbeat, resume "
             "dead peers' cells",
    )
    worker.add_argument("--registry", required=True,
                        help="shared run-registry directory")
    worker.add_argument("--transport", default="fs",
                        help="registry transport: 'fs' or an object-"
                             "store URI (s3://host:port/bucket)")
    _add_matrix_flags(worker)
    worker.add_argument("--worker-id", default=None,
                        help="stable worker identity (default: host-pid)")
    worker.add_argument("--ttl", type=float, default=30.0,
                        help="lease TTL in seconds")
    worker.add_argument("--poll", type=float, default=1.0,
                        help="idle poll interval (s)")
    worker.add_argument("--eval-workers", type=int, default=None,
                        help="evaluation fan-out inside a leased cell")
    worker.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many consecutive idle "
                             "seconds (default: wait for peers forever)")

    dash = sub.add_parser(
        "dash",
        help="live terminal dashboard over a campaign registry: "
             "per-cell convergence sparklines, lease/status table, "
             "fleet health, budget spend — works on running and "
             "dead/finished campaigns alike",
    )
    dash.add_argument("--registry", required=True,
                      help="run-registry directory to watch")
    dash.add_argument("--transport", default="fs",
                      help="registry transport: 'fs' or an object-"
                           "store URI (s3://host:port/bucket)")
    _add_matrix_flags(dash)
    dash.add_argument("--interval", type=float, default=2.0,
                      help="seconds between refreshes")
    dash.add_argument("--once", action="store_true",
                      help="render a single frame and exit (CI and "
                           "post-mortem use; no screen clearing)")
    dash.add_argument("--frames", type=int, default=None,
                      help="stop after N refreshes (default: run until "
                           "interrupted)")
    dash.add_argument("--width", type=int, default=32,
                      help="sparkline width in columns")

    export_metrics = sub.add_parser(
        "export-metrics",
        help="export a campaign metrics snapshot: Prometheus textfile "
             "(PREFIX.prom) + JSON (PREFIX.json)",
    )
    export_metrics.add_argument("--registry", required=True,
                                help="run-registry directory to probe")
    export_metrics.add_argument("--transport", default="fs",
                                help="registry transport: 'fs' or an "
                                     "object-store URI "
                                     "(s3://host:port/bucket)")
    _add_matrix_flags(export_metrics)
    export_metrics.add_argument("--out", default=None,
                                help="output path prefix (default: "
                                     "<registry>/metrics)")

    lint = sub.add_parser(
        "lint",
        help="AST invariant checker: seeded RNG, injectable clocks, "
             "sorted scans, atomic writes, checkpoint completeness",
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: src/repro)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="diagnostic output format")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and zone policy, then exit")
    lint.add_argument("--deep", action="store_true",
                      help="whole-program pass: call-graph taint flows, "
                           "all-paths atomic writes, pool/lease rules "
                           "(RL101-RL105)")
    lint.add_argument("--trace", action="store_true",
                      help="print the full source->sink call chain under "
                           "each flow finding (text format)")

    return parser


_HANDLERS = {
    "models": commands.cmd_models,
    "describe": commands.cmd_describe,
    "map": commands.cmd_map,
    "partition": commands.cmd_partition,
    "tiling": commands.cmd_tiling,
    "trace": commands.cmd_trace,
    "dse": commands.cmd_dse,
    "pareto": commands.cmd_pareto,
    "experiment": commands.cmd_experiment,
    "suite": commands.cmd_suite,
    "worker": commands.cmd_worker,
    "dash": commands.cmd_dash,
    "export-metrics": commands.cmd_export_metrics,
    "lint": commands.cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Handlers return the text to print, or ``(text, exit_code)`` when the
    printed output and the process status are independent (``suite``
    prints its merged report even for a failed campaign but must exit
    non-zero so automation can gate on it).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        result = handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if isinstance(result, tuple):
        text, code = result
        print(text)
        return code
    print(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
