"""Top-level argument parser and dispatch for ``python -m repro``."""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError
from ..experiments.common import SCALES
from . import commands


def build_parser() -> argparse.ArgumentParser:
    """Construct the full CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Cocco reproduction: graph-level memory optimization and "
            "hardware-mapping co-exploration (Tan, Zhu & Ma, ASPLOS 2024)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo")

    describe = sub.add_parser("describe", help="show a model's layer table")
    describe.add_argument("model")
    describe.add_argument("--limit", type=int, default=None,
                          help="show only the first N layers")

    mapping = sub.add_parser("map", help="map layers onto the PE array")
    mapping.add_argument("model")
    mapping.add_argument("--limit", type=int, default=None,
                         help="show only the first N layers")

    partition = sub.add_parser("partition", help="partition a model")
    partition.add_argument("model")
    partition.add_argument("--method", choices=commands._PARTITIONERS,
                           default="cocco")
    partition.add_argument("--metric", choices=("ema", "energy"), default="ema")
    partition.add_argument("--glb", help="global buffer size (e.g. 1MB)")
    partition.add_argument("--wgt", help="weight buffer size (e.g. 1152KB)")
    partition.add_argument("--shared", help="shared buffer size (exclusive)")
    partition.add_argument("--scale", choices=sorted(SCALES), default="quick")
    partition.add_argument("--seed", type=int, default=0)
    partition.add_argument("--show-groups", action="store_true",
                           help="print each subgraph's member layers")
    partition.add_argument("--chart", action="store_true",
                           help="bar chart of subgraph sizes")

    tiling = sub.add_parser("tiling", help="derive a subgraph tiling scheme")
    tiling.add_argument("model")
    tiling.add_argument("--layers", required=True,
                        help="comma list, 'a..b' spans, or 'all'")
    tiling.add_argument("--tile", type=int, default=1,
                        help="output tile rows (stage-1 choice)")

    trace = sub.add_parser("trace", help="replay a subgraph's memory trace")
    trace.add_argument("model")
    trace.add_argument("--layers", required=True,
                       help="comma list, 'a..b' spans, or 'all'")
    trace.add_argument("--tile", type=int, default=1)
    trace.add_argument("--bpe", type=int, default=1,
                       help="bytes per element (must match the pricing "
                            "config; the trace records it)")
    trace.add_argument("--ops", type=int, default=None,
                       help="truncate after N elementary operations")
    trace.add_argument("--snapshots", type=int, default=4,
                       help="memory snapshots to render")

    dse = sub.add_parser("dse", help="hardware-mapping co-exploration")
    dse.add_argument("model")
    dse.add_argument("--mode", choices=("separate", "shared"),
                     default="separate")
    dse.add_argument("--method", choices=commands._DSE_METHODS, default="cocco")
    dse.add_argument("--metric", choices=("ema", "energy"), default="energy")
    dse.add_argument("--alpha", type=float, default=0.002)
    dse.add_argument("--scale", choices=sorted(SCALES), default="quick")
    dse.add_argument("--seed", type=int, default=0)
    dse.add_argument("--workers", type=int, default=1,
                     help="evaluation worker processes (1 = serial; "
                          "results are identical for any value)")
    dse.add_argument("--profile-timings", action="store_true",
                     help="print a per-stage evaluation timing breakdown "
                          "(profile / price / aggregate / other) after the run")

    pareto = sub.add_parser(
        "pareto", help="multi-objective capacity/metric frontier (NSGA-II)"
    )
    pareto.add_argument("model")
    pareto.add_argument("--mode", choices=("separate", "shared"),
                        default="shared")
    pareto.add_argument("--metric", choices=("ema", "energy"),
                        default="energy")
    pareto.add_argument("--scale", choices=sorted(SCALES), default="quick")
    pareto.add_argument("--seed", type=int, default=0)
    pareto.add_argument("--workers", type=int, default=1,
                        help="evaluation worker processes (1 = serial; "
                             "results are identical for any value)")
    pareto.add_argument("--profile-timings", action="store_true",
                        help="print a per-stage evaluation timing breakdown "
                             "(profile / price / aggregate / other) after the run")
    pareto.add_argument("--chart", action="store_true",
                        help="ASCII scatter of the frontier")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table or figure"
    )
    experiment.add_argument("id", help="fig3, fig11..fig14, table1..table3")
    experiment.add_argument("--scale", choices=sorted(SCALES), default="quick")
    experiment.add_argument("--workers", type=int, default=1,
                            help="evaluation worker processes for the "
                                 "search loops (1 = serial)")
    experiment.add_argument("--export", help="write the result to CSV/JSON")

    suite = sub.add_parser(
        "suite",
        help="run a durable, sharded, resumable experiment campaign",
    )
    suite.add_argument("--networks", required=True,
                       help="comma list of zoo models (matrix dimension)")
    suite.add_argument("--modes", default="separate",
                       help="comma list of buffer modes: separate,shared")
    suite.add_argument("--metrics", default="energy",
                       help="comma list of metrics: ema,energy")
    suite.add_argument("--schemes", default="cocco",
                       help="comma list of schemes: cocco,rs,gs,sa,nsga")
    suite.add_argument("--bytes-per-element", default="1",
                       help="comma list of element widths in bytes")
    suite.add_argument("--alphas", default="0.002",
                       help="comma list of Formula 2 alphas")
    suite.add_argument("--scale", choices=sorted(SCALES), default="quick")
    suite.add_argument("--seed", type=int, default=0,
                       help="campaign seed; every cell's seed derives "
                            "from it plus the cell's stable key")
    suite.add_argument("--workers", type=int, default=1,
                       help="worker processes cells are sharded across")
    suite.add_argument("--registry", default="runs-registry",
                       help="run-registry directory (created if missing)")
    suite.add_argument("--max-rounds", type=int, default=3,
                       help="retry rounds after worker-process deaths")
    suite.add_argument("--report-only", action="store_true",
                       help="merge and print the registry's current "
                            "results without running anything")
    suite.add_argument("--export", help="also write the merged report "
                                        "to this CSV/JSON path")

    return parser


_HANDLERS = {
    "models": commands.cmd_models,
    "describe": commands.cmd_describe,
    "map": commands.cmd_map,
    "partition": commands.cmd_partition,
    "tiling": commands.cmd_tiling,
    "trace": commands.cmd_trace,
    "dse": commands.cmd_dse,
    "pareto": commands.cmd_pareto,
    "experiment": commands.cmd_experiment,
    "suite": commands.cmd_suite,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Handlers return the text to print, or ``(text, exit_code)`` when the
    printed output and the process status are independent (``suite``
    prints its merged report even for a failed campaign but must exit
    non-zero so automation can gate on it).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        result = handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if isinstance(result, tuple):
        text, code = result
        print(text)
        return code
    print(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
