"""Implementations of the CLI subcommands.

Each function takes parsed arguments and returns the text to print, so
the command layer stays testable without capturing stdout.
"""

from __future__ import annotations

import argparse

from ..config import AcceleratorConfig
from ..cost.evaluator import Evaluator
from ..cost.objective import Metric
from ..errors import ConfigError, SearchError
from ..execution.tiling import derive_tiling
from ..experiments.common import SCALES, paper_accelerator
from ..experiments.reporting import ExperimentResult, format_table
from ..graphs.analysis import graph_stats
from ..graphs.zoo import available_models, get_model
from ..mapper import graph_utilization, map_graph
from ..memory.trace import render_trace, trace_subgraph
from ..partition.dp import dp_partition
from ..partition.enumeration import enumerate_partition
from ..partition.greedy import greedy_partition
from ..partition.random_init import random_partition
from ..search_space import CapacitySpace
from ..dse.cocco import cocco_co_optimize, cocco_partition_only
from ..dse.sa import sa_co_optimize
from ..dse.two_step import grid_search_ga, random_search_ga
from ..units import to_kb, to_mb
from ..viz.charts import bar_chart
from ..viz.export import write_result
from .parsing import parse_layer_list, parse_memory


def _metric(name: str) -> Metric:
    return Metric.EMA if name == "ema" else Metric.ENERGY


def _timing_breakdown(evaluator: Evaluator, wall_seconds: float) -> list[str]:
    """Per-stage timing lines for ``--profile-timings``.

    The three instrumented stages are subgraph profiling, memory-dependent
    pricing, and partition aggregation; the remainder of the wall clock is
    search machinery (breeding, selection, repair bookkeeping) plus any
    parallel-backend overhead. Stage times include work done in worker
    processes (their counters are merged back after every batch).
    """
    timings = evaluator.timings
    staged = sum(timings.values())
    other = max(0.0, wall_seconds - staged)
    lines = ["  timing breakdown:"]
    for label, key in (
        ("profile", "profile_s"),
        ("price", "price_s"),
        ("batch", "batch_s"),
        ("aggregate", "aggregate_s"),
    ):
        lines.append(f"    {label:<10}: {timings.get(key, 0.0):8.3f}s")
    lines.append(f"    {'other':<10}: {other:8.3f}s (search + backend overhead)")
    lines.append(f"    {'total':<10}: {wall_seconds:8.3f}s wall")
    lines.append(
        f"    profiles   : {evaluator.num_profile_calls} derived, "
        f"{evaluator.num_cost_calls} subgraphs priced"
    )
    calls = evaluator.num_batch_calls
    priced = evaluator.num_batch_priced
    if calls:
        seen = priced + evaluator.num_batch_hits
        lines.append(
            f"    batch      : {priced} keys in {calls} batches "
            f"(avg {priced / calls:.1f}/batch), "
            f"direct-solve {_rate(evaluator.num_batch_direct, priced)}, "
            f"cache hits {_rate(evaluator.num_batch_hits, seen)}, "
            f"{evaluator.num_direct_probes} analytic feasibility probes"
        )
    return lines


def _rate(part: int, whole: int) -> str:
    """``part``/``whole`` as a percentage string (``-`` for empty)."""
    return f"{100.0 * part / whole:.1f}%" if whole else "-"


def _accelerator(args: argparse.Namespace) -> AcceleratorConfig:
    memory = parse_memory(
        getattr(args, "glb", None),
        getattr(args, "wgt", None),
        getattr(args, "shared", None),
    )
    return paper_accelerator(memory=memory)


# ---------------------------------------------------------------------------
def cmd_models(args: argparse.Namespace) -> str:
    """``repro models`` — list the zoo with summary statistics."""
    headers = ("model", "layers", "edges", "MACs(G)", "weights(MB)", "acts(MB)")
    rows = []
    for name in available_models():
        graph = get_model(name)
        stats = graph_stats(graph)
        rows.append(
            (
                name,
                len(graph.compute_names),
                len(graph.edges),
                round(graph.total_macs / 1e9, 2),
                round(to_mb(graph.total_weight_bytes), 2),
                round(to_mb(stats.total_activation_bytes), 2),
            )
        )
    return format_table(headers, rows, title="model zoo")


def cmd_describe(args: argparse.Namespace) -> str:
    """``repro describe <model>`` — per-layer table plus graph stats."""
    graph = get_model(args.model)
    stats = graph_stats(graph)
    headers = ("layer", "op", "shape", "k/s", "weights(KB)", "MACs(M)")
    rows = []
    names = graph.topological_order()
    if args.limit is not None:
        names = names[: args.limit]
    for name in names:
        spec = graph.layer(name)
        rows.append(
            (
                name,
                spec.op.value,
                str(spec.shape),
                f"{spec.kernel}/{spec.stride}",
                round(to_kb(spec.weight_bytes), 1),
                round(spec.macs / 1e6, 2),
            )
        )
    table = format_table(headers, rows, title=f"{args.model}")
    summary = (
        f"\n{len(graph.compute_names)} compute layers, "
        f"{len(graph.edges)} edges, depth {stats.depth}, "
        f"max fan-out {stats.max_fanout}; "
        f"{graph.total_macs / 1e9:.2f} GMACs, "
        f"{to_mb(graph.total_weight_bytes):.2f} MB weights"
    )
    return table + summary


def cmd_map(args: argparse.Namespace) -> str:
    """``repro map <model>`` — PE-array mapping and utilization report."""
    graph = get_model(args.model)
    accel = AcceleratorConfig()
    mapping = map_graph(graph, accel)
    util = graph_utilization(graph, accel, mapping)
    headers = ("layer", "mapping", "utilization", "cycles")
    rows = []
    names = list(mapping.layers)
    if args.limit is not None:
        names = names[: args.limit]
    for name in names:
        layer = mapping[name]
        rows.append(
            (
                name,
                layer.best.mapping.describe(),
                round(layer.utilization, 3),
                layer.compute_cycles,
            )
        )
    table = format_table(headers, rows, title=f"{args.model} mapping")
    summary = (
        f"\nmean utilization {util.mean:.3f}, "
        f"MAC-weighted {util.macs_weighted:.3f} "
        f"(flat model assumes {accel.pe_utilization})"
    )
    return table + summary


# ---------------------------------------------------------------------------
_PARTITIONERS = ("greedy", "dp", "cocco", "enum", "random")


def cmd_partition(args: argparse.Namespace) -> str:
    """``repro partition <model>`` — run one partitioner, report costs."""
    graph = get_model(args.model)
    accel = _accelerator(args)
    evaluator = Evaluator(graph, accel)
    metric = _metric(args.metric)
    scale = SCALES[args.scale]

    def cost_fn(members: frozenset[str]) -> float:
        cost = evaluator.subgraph_cost(members)
        if not cost.feasible:
            return float("inf")
        return cost.ema_bytes if metric is Metric.EMA else cost.energy_pj

    if args.method == "greedy":
        partition = greedy_partition(graph, cost_fn)
    elif args.method == "dp":
        partition = dp_partition(graph, cost_fn)
    elif args.method == "random":
        import random as _random

        partition = random_partition(graph, _random.Random(args.seed))
    elif args.method == "enum":
        capacity = accel.memory.activation_capacity

        def prune_fn(members: frozenset[str]) -> bool:
            return evaluator.min_footprint(members) > capacity * 1.25

        try:
            partition = enumerate_partition(
                graph,
                cost_fn,
                max_subgraph_size=scale.enum_max_subgraph,
                max_states=scale.enum_max_states,
                prune_fn=prune_fn,
                max_candidates_per_state=scale.enum_max_states,
            )
        except SearchError as exc:
            return f"enumeration exhausted its budget: {exc}"
    else:
        result = cocco_partition_only(
            evaluator,
            accel.memory,
            metric=metric,
            ga_config=scale.ga_config(seed=args.seed),
        )
        partition = result.best_genome.partition

    cost = evaluator.evaluate(partition.subgraph_sets)
    lines = [
        f"{args.method} partition of {args.model}: "
        f"{partition.num_subgraphs} subgraphs",
        f"  EMA        : {to_mb(cost.ema_bytes):.2f} MB",
        f"  energy     : {cost.energy_pj / 1e9:.3f} mJ",
        f"  avg BW     : {cost.bandwidth.average_bytes_per_second / 1e9:.2f} GB/s",
        f"  latency    : {cost.latency_cycles / accel.frequency_hz * 1e3:.2f} ms",
        f"  feasible   : {cost.feasible}",
    ]
    if args.show_groups:
        for index, members in enumerate(partition.subgraph_sets):
            lines.append(f"  subgraph {index}: {', '.join(sorted(members))}")
    if args.chart:
        sizes = [len(s) for s in partition.subgraph_sets]
        labels = [str(i) for i in range(len(sizes))]
        lines.append(bar_chart(labels, [float(s) for s in sizes],
                               title="subgraph sizes (layers)"))
    return "\n".join(lines)


def cmd_tiling(args: argparse.Namespace) -> str:
    """``repro tiling <model> --layers ...`` — show the derived scheme."""
    graph = get_model(args.model)
    members = parse_layer_list(graph, args.layers)
    tiling = derive_tiling(graph, members, output_tile_rows=args.tile)
    headers = ("node", "role", "delta", "tile_rows", "upd_num", "rows/op")
    rows = []
    for name in graph.topological_order():
        if name not in tiling:
            continue
        node = tiling[name]
        role = "input" if node.is_interface_input else (
            "output" if node.is_output else "inter."
        )
        rows.append(
            (name, role, node.delta, node.tile_rows, node.upd_num,
             node.rows_per_op)
        )
    table = format_table(headers, rows,
                         title=f"consumption-centric tiling ({len(members)} layers)")
    return table + f"\n{tiling.num_elementary_ops} elementary operations"


def cmd_trace(args: argparse.Namespace) -> str:
    """``repro trace <model> --layers ...`` — replay the memory behaviour."""
    graph = get_model(args.model)
    members = parse_layer_list(graph, args.layers)
    trace = trace_subgraph(
        graph,
        members,
        output_tile_rows=args.tile,
        bytes_per_element=getattr(args, "bpe", 1),
        max_ops=args.ops,
    )
    return render_trace(trace, graph, max_snapshots=args.snapshots)


# ---------------------------------------------------------------------------
_DSE_METHODS = ("cocco", "sa", "rs", "gs")


def cmd_dse(args: argparse.Namespace) -> str:
    """``repro dse <model>`` — hardware-mapping co-exploration."""
    import time as _time

    graph = get_model(args.model)
    profile_timings = getattr(args, "profile_timings", False)
    evaluator = Evaluator(
        graph, paper_accelerator(), collect_timings=profile_timings
    )
    scale = SCALES[args.scale]
    workers = getattr(args, "workers", 1)
    started = _time.perf_counter()
    space = (
        CapacitySpace.paper_shared()
        if args.mode == "shared"
        else CapacitySpace.paper_separate()
    )
    metric = _metric(args.metric)
    if args.method == "cocco":
        result = cocco_co_optimize(
            evaluator, space, metric=metric, alpha=args.alpha,
            ga_config=scale.co_opt_ga_config(seed=args.seed, workers=workers),
        )
    elif args.method == "sa":
        # the SA chain is sequential; --workers has nothing to fan out
        result = sa_co_optimize(
            evaluator, space, metric=metric, alpha=args.alpha,
            sa_config=scale.co_opt_sa_config(seed=args.seed),
        )
    elif args.method == "rs":
        result = random_search_ga(
            evaluator, space, metric=metric, alpha=args.alpha,
            num_candidates=scale.rs_candidates,
            ga_config=scale.ga_config(seed=args.seed, workers=workers),
            seed=args.seed,
        )
    else:
        result = grid_search_ga(
            evaluator, space, metric=metric, alpha=args.alpha,
            stride=scale.gs_stride, max_candidates=scale.gs_max_candidates,
            ga_config=scale.ga_config(seed=args.seed, workers=workers),
        )
    cost = result.partition_cost
    lines = [
        f"{result.method} co-exploration of {args.model} "
        f"({args.mode} buffer, alpha={args.alpha}, metric={args.metric})",
        f"  recommended : {result.describe_memory()}",
        f"  cost        : {result.best_cost:.3e}",
        f"  EMA         : {to_mb(cost.ema_bytes):.2f} MB",
        f"  energy      : {cost.energy_pj / 1e9:.3f} mJ",
        f"  subgraphs   : {cost.num_subgraphs}",
        f"  evaluations : {result.num_evaluations}",
    ]
    if profile_timings:
        lines.extend(_timing_breakdown(evaluator, _time.perf_counter() - started))
    return "\n".join(lines)


def cmd_pareto(args: argparse.Namespace) -> str:
    """``repro pareto <model>`` — multi-objective capacity/metric frontier."""
    from ..dse.nsga import NSGAConfig, nsga2_co_optimize
    from ..viz.charts import scatter_chart
    import time as _time

    graph = get_model(args.model)
    profile_timings = getattr(args, "profile_timings", False)
    evaluator = Evaluator(
        graph, paper_accelerator(), collect_timings=profile_timings
    )
    started = _time.perf_counter()
    space = (
        CapacitySpace.paper_shared()
        if args.mode == "shared"
        else CapacitySpace.paper_separate()
    )
    scale = SCALES[args.scale]
    result = nsga2_co_optimize(
        evaluator,
        space,
        metric=_metric(args.metric),
        config=NSGAConfig(
            population_size=scale.ga_population,
            generations=scale.ga_generations,
            seed=args.seed,
            workers=getattr(args, "workers", 1),
        ),
    )
    headers = ("capacity", "metric_cost", "formula2@0.002")
    rows = [
        (
            f"{to_kb(p.capacity_bytes):.0f}KB",
            f"{p.metric_cost:.4e}",
            f"{p.formula2(0.002):.4e}",
        )
        for p in result.front
    ]
    table = format_table(
        headers, rows,
        title=f"{args.model} capacity-{args.metric} Pareto frontier "
              f"({result.num_evaluations} evaluations)",
    )
    if args.chart and len(result.front) >= 2:
        points = [(to_kb(p.capacity_bytes), p.metric_cost) for p in result.front]
        table += "\n" + scatter_chart(
            {"frontier": points}, title="capacity (KB) vs metric cost"
        )
    if profile_timings:
        table += "\n" + "\n".join(
            _timing_breakdown(evaluator, _time.perf_counter() - started)
        )
    return table


def cmd_experiment(args: argparse.Namespace) -> str:
    """``repro experiment <id>`` — regenerate a paper table/figure."""
    from ..experiments.runner import EXPERIMENTS, experiment_result

    if args.id not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {args.id!r}; choose from "
            f"{', '.join(EXPERIMENTS)}"
        )
    result: ExperimentResult = experiment_result(
        args.id, SCALES[args.scale], workers=getattr(args, "workers", 1)
    )
    text = result.to_text()
    if args.export:
        path = write_result(result, args.export)
        text += f"\nexported to {path}"
    return text


def _parse_list(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _suite_matrix(args: argparse.Namespace):
    from ..runs.suite import SuiteMatrix

    if not args.networks:
        raise ConfigError("--networks is required (except with --gc)")
    return SuiteMatrix(
        networks=_parse_list(args.networks),
        modes=_parse_list(args.modes),
        metrics=_parse_list(args.metrics),
        bytes_per_element=tuple(
            int(v) for v in _parse_list(args.bytes_per_element)
        ),
        schemes=_parse_list(args.schemes),
        alphas=tuple(float(v) for v in _parse_list(args.alphas)),
        scale=args.scale,
        seed=args.seed,
    )


def _registry_root(args: argparse.Namespace) -> str:
    """Resolve the registry root from ``--transport`` / ``--registry``.

    ``--transport fs`` (the default) keeps the classic behavior: the
    registry *is* the ``--registry`` directory. Any other value must be
    a transport URI (``s3://host:port/bucket``) and becomes the
    registry root itself — ``--registry`` then only anchors local
    outputs such as the merged ``report.json``.
    """
    transport = getattr(args, "transport", None) or "fs"
    if transport == "fs":
        return args.registry
    if "://" not in transport:
        raise ConfigError(
            f"unknown transport {transport!r}: expected 'fs' or an "
            "object-store URI like s3://host:port/bucket"
        )
    return transport


def _campaign_target(args: argparse.Namespace):
    """Resolve (matrix, budget) from flags or the registry manifest.

    Shared by every command that *observes* someone else's campaign
    (``worker``, ``suite --status``, ``dash``, ``export-metrics``):
    explicit ``--networks`` flags win, otherwise the coordinator's
    ``campaign.json`` manifest is read; either way an omitted
    ``--budget`` falls back to the manifest's (running uncapped against
    a budgeted fleet, or rendering a budgeted campaign as unbudgeted,
    would disagree with every other participant's schedule).
    """
    from ..distrib.coordinator import read_manifest

    budget = args.budget
    if args.networks:
        matrix = _suite_matrix(args)
        if budget is None:
            try:
                _, budget = read_manifest(_registry_root(args))
            except ConfigError:
                pass  # no coordinator manifest: genuinely unbudgeted
    else:
        matrix, manifest_budget = read_manifest(_registry_root(args))
        if budget is None:
            budget = manifest_budget
    return matrix, budget


def cmd_suite(args: argparse.Namespace) -> tuple[str, int]:
    """``repro suite`` — run (or resume) a sharded experiment campaign.

    Expands the workload matrix into cells, shards them across worker
    processes, skips cells the registry already holds complete, and
    merges every durable result into one report. Safe to kill and
    re-run: the resumed campaign's merged report is bit-identical to an
    uninterrupted one at the same campaign seed. Exits non-zero when any
    cell failed or remains incomplete, so CI can gate on the campaign.

    ``--distributed`` switches to coordinator mode (spawning
    ``--workers`` local ``repro worker`` processes against the shared
    registry), ``--budget`` caps the campaign's total samples with
    deterministic per-cell re-granting, ``--status`` prints the live
    lease/checkpoint view, and ``--gc`` reclaims stale checkpoint/lease
    files of completed runs.
    """
    from pathlib import Path as _Path

    from ..runs.registry import RunRegistry
    from ..runs.suite import merged_report, run_suite

    registry_root = _registry_root(args)
    registry = RunRegistry(registry_root)
    if args.gc:
        removed, reclaimed = registry.gc()
        return (
            f"gc [{registry.location}]: removed {removed} stale "
            f"file(s), reclaimed {to_kb(reclaimed):.1f} KB"
        ), 0

    if args.status:
        # Status is a pure read of someone else's campaign: prefer the
        # coordinator's manifest over retyped (and easily mistyped)
        # matrix flags, exactly as `repro worker` does. Both formats
        # fold the registry through the same aggregation path
        # (obs.aggregate.build_view wraps the table's snapshot), so the
        # JSON view and the human table can never disagree.
        import json as _json

        from ..obs.aggregate import build_view
        from ..obs.metrics import campaign_metrics, write_metrics
        from ..viz.campaign import render_campaign

        matrix, budget = _campaign_target(args)
        view = build_view(matrix, registry, budget=budget)
        if args.format == "json":
            text = _json.dumps(
                campaign_metrics(view), indent=2, sort_keys=True
            )
        else:
            text = render_campaign(list(view.statuses))
        if args.metrics_out:
            prom, snapshot = write_metrics(view, args.metrics_out)
            text += f"\nmetrics: {prom}, {snapshot}"
        return text, 0

    matrix = _suite_matrix(args)
    if args.report_only:
        report = merged_report(matrix, registry)
        lines = [report.to_text()]
        if args.export:
            lines.append(f"exported to {write_result(report, args.export)}")
        return "\n".join(lines), 0

    if args.distributed:
        from ..distrib.coordinator import CoordinatorConfig, run_distributed

        config = CoordinatorConfig(
            spawn_workers=args.workers if not args.autoscale else 0,
            lease_ttl=args.ttl,
            poll_interval=args.poll,
            eval_workers=args.eval_workers,
            status_interval=args.status_interval,
            timeout=args.timeout,
            on_status=lambda text: print(text, flush=True),
            autoscale=args.autoscale,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            worker_max_idle=args.worker_max_idle,
        )
        outcome = run_distributed(
            matrix, registry_root, budget=args.budget, config=config
        )
    else:
        outcome = run_suite(
            matrix, registry_root, workers=args.workers,
            max_rounds=args.max_rounds, budget=args.budget,
            eval_workers=args.eval_workers,
        )
    if "://" in str(args.registry):
        # The registry itself is remote: publish the merged report into
        # the store instead of fabricating a local directory named
        # after the URI.
        from ..viz.export import result_to_json

        registry.root_node().write_atomic(
            "report.json", result_to_json(outcome.report)
        )
        report_path = f"{registry.location}/report.json"
    else:
        report_path = write_result(
            outcome.report, _Path(args.registry) / "report.json"
        )
    lines = [outcome.report.to_text(), "", outcome.summary(),
             f"merged report: {report_path}"]
    for cell_id, error in outcome.errors.items():
        lines.append(f"  failed {cell_id}: {error}")
    if args.export:
        path = write_result(outcome.report, args.export)
        lines.append(f"exported to {path}")
    if args.metrics_out:
        from ..obs.metrics import export_metrics

        prom, snapshot = export_metrics(
            matrix, registry, args.metrics_out, budget=args.budget
        )
        lines.append(f"metrics: {prom}, {snapshot}")
    return "\n".join(lines), 1 if outcome.failed or outcome.exhausted else 0


def cmd_worker(args: argparse.Namespace) -> str:
    """``repro worker`` — join a campaign as a lease-claiming worker.

    Points at a shared registry directory; the matrix comes from the
    flags or, when ``--networks`` is omitted, from the coordinator's
    ``campaign.json`` manifest. Runs until the campaign is finished
    (or ``--max-idle`` elapses with nothing claimable), then prints a
    summary of the cells it ran, resumed, and reclaimed.
    """
    from ..distrib.worker import (
        WorkerConfig,
        default_worker_id,
        run_worker,
    )

    matrix, budget = _campaign_target(args)
    config = WorkerConfig(
        worker_id=args.worker_id or default_worker_id(),
        lease_ttl=args.ttl,
        poll_interval=args.poll,
        eval_workers=args.eval_workers,
        max_idle=args.max_idle,
    )
    summary = run_worker(matrix, _registry_root(args), config, budget=budget)
    return summary.render()


def cmd_dash(args: argparse.Namespace) -> str:
    """``repro dash`` — live terminal dashboard over a campaign.

    A pure observer: reads the same registry bytes every worker trusts
    (histories, leases, telemetry streams, results) and renders
    convergence sparklines, the cell status table, fleet health, and
    budget totals. ``--once`` prints a single frame — the post-mortem
    mode for finished or killed campaigns and for CI logs; without it
    the screen refreshes every ``--interval`` seconds until
    interrupted.
    """
    from ..obs.aggregate import build_view
    from ..obs.dash import render_dashboard, run_dash
    from ..runs.registry import RunRegistry

    matrix, budget = _campaign_target(args)
    registry_root = _registry_root(args)
    if args.once:
        view = build_view(matrix, RunRegistry(registry_root), budget=budget)
        return render_dashboard(view, width=args.width)
    try:
        frames = run_dash(
            matrix, registry_root, budget=budget, interval=args.interval,
            frames=args.frames, width=args.width,
        )
    except KeyboardInterrupt:
        return "dashboard stopped"
    return f"dashboard stopped after {frames} frame(s)"


def cmd_export_metrics(args: argparse.Namespace) -> str:
    """``repro export-metrics`` — snapshot campaign metrics to disk.

    Writes ``PREFIX.prom`` (Prometheus textfile exposition, ready for
    the node-exporter textfile collector) and ``PREFIX.json`` (the same
    numbers as one JSON object). Works while the campaign runs and
    after it is dead — the snapshot is a pure function of whatever
    registry bytes survived.
    """
    from pathlib import Path as _Path

    from ..obs.metrics import export_metrics

    matrix, budget = _campaign_target(args)
    registry_root = _registry_root(args)
    if args.out:
        prefix = args.out
    elif "://" in str(args.registry):
        raise ConfigError(
            "--out is required when the registry is a transport URI "
            "(there is no local registry directory to default into)"
        )
    else:
        prefix = str(_Path(args.registry) / "metrics")
    prom, snapshot = export_metrics(
        matrix, registry_root, prefix, budget=budget
    )
    return f"wrote {prom}\nwrote {snapshot}"


def cmd_lint(args: argparse.Namespace) -> tuple[str, int]:
    """``repro lint`` — machine-check the reproduction's invariants.

    Runs the AST rule set of :mod:`repro.lint` (seeded-RNG-only,
    injectable clocks, sorted scans, atomic durable writes, checkpoint
    round-trip completeness) over the given paths and exits 0 only when
    the tree is clean — CI gates on it exactly like ruff. ``--deep``
    adds the whole-program pass (:mod:`repro.lint.flows`): call-graph
    taint flows from nondeterminism sources to durable sinks,
    all-paths atomic-write verification, pool-shared-state and
    lease-region checks. ``--trace`` prints each flow finding's full
    source→sink call chain; ``--format json``/``sarif`` emit findings
    machine-readably; ``--list-rules`` prints the rule table and zone
    policy.
    """
    import json as _json
    from pathlib import Path as _Path

    from ..lint import DEFAULT_POLICY, Linter
    from ..lint.flows import DEEP_PROJECT_RULES, DEEP_RULES
    from ..lint.rules import ALL_RULES

    if args.list_rules:
        lines = ["rule   name                           zones"]
        deep_ids = {
            rule.rule_id for rule in (*DEEP_RULES, *DEEP_PROJECT_RULES)
        }
        for rule in (*ALL_RULES, *DEEP_RULES, *DEEP_PROJECT_RULES):
            zones = [
                zone.name
                for zone in DEFAULT_POLICY.zones
                if rule.rule_id in zone.rules
            ] or ["project-wide"]
            if rule.rule_id in deep_ids:
                zones.append("deep")
            lines.append(
                f"{rule.rule_id}  {rule.name:<30} {', '.join(zones)}"
            )
            lines.append(f"       {rule.summary}")
        return "\n".join(lines), 0

    paths = [_Path(p) for p in (args.paths or ["src/repro"])]
    for path in paths:
        if not path.exists():
            raise ConfigError(f"no such file or directory: {path}")
    report = Linter(deep=args.deep).lint(paths)
    if args.format == "json":
        text = _json.dumps(report.to_dict(), indent=2)
    elif args.format == "sarif":
        from ..lint.sarif import render_sarif

        text = render_sarif(report)
    else:
        text = report.render(with_trace=args.trace)
    return text, 0 if report.clean else 1
