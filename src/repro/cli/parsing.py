"""Argument-parsing helpers shared by the CLI subcommands."""

from __future__ import annotations

from ..config import MemoryConfig
from ..errors import ConfigError
from ..graphs.graph import ComputationGraph
from ..units import kb, mb

_SUFFIXES = {
    "kb": kb(1),
    "k": kb(1),
    "mb": mb(1),
    "m": mb(1),
    "b": 1,
}


def parse_size(text: str) -> int:
    """Parse a human size string: ``512KB``, ``1.5MB``, ``2048`` (bytes)."""
    cleaned = text.strip().lower().replace(" ", "")
    for suffix in sorted(_SUFFIXES, key=len, reverse=True):
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)]
            break
    else:
        suffix, number = "b", cleaned
    try:
        value = float(number)
    except ValueError:
        raise ConfigError(f"cannot parse size {text!r}") from None
    result = int(value * _SUFFIXES[suffix])
    if result <= 0:
        raise ConfigError(f"size must be positive, got {text!r}")
    return result


def parse_memory(
    glb: str | None, wgt: str | None, shared: str | None
) -> MemoryConfig:
    """Build a memory config from the ``--glb/--wgt/--shared`` options.

    ``--shared`` is exclusive with the separate-buffer pair; omitting
    everything yields the paper's 1 MB + 1.125 MB platform.
    """
    if shared is not None:
        if glb is not None or wgt is not None:
            raise ConfigError("--shared cannot be combined with --glb/--wgt")
        return MemoryConfig.shared(parse_size(shared))
    glb_bytes = parse_size(glb) if glb is not None else mb(1)
    wgt_bytes = parse_size(wgt) if wgt is not None else kb(1152)
    return MemoryConfig.separate(glb_bytes, wgt_bytes)


def parse_layer_list(graph: ComputationGraph, text: str) -> frozenset[str]:
    """Parse a comma-separated layer list, validating against the graph.

    The token ``all`` selects every compute layer; ``a..b`` selects the
    topological-order span from ``a`` to ``b`` inclusive.
    """
    text = text.strip()
    if text == "all":
        return frozenset(graph.compute_names)
    members: set[str] = set()
    order = list(graph.topological_order())
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if ".." in token:
            first, _, last = token.partition("..")
            first, last = first.strip(), last.strip()
            for name in (first, last):
                if name not in graph:
                    raise ConfigError(f"unknown layer {name!r}")
            lo, hi = order.index(first), order.index(last)
            if lo > hi:
                lo, hi = hi, lo
            members.update(
                n for n in order[lo : hi + 1] if not graph.layer(n).is_input
            )
        else:
            if token not in graph:
                raise ConfigError(f"unknown layer {token!r}")
            if graph.layer(token).is_input:
                raise ConfigError(f"layer {token!r} is a model input")
            members.add(token)
    if not members:
        raise ConfigError(f"no layers selected by {text!r}")
    return frozenset(members)
