"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the library's main entry points — listing and
describing zoo models, running each partitioner, deriving tiling schemes,
tracing memory behaviour, mapping layers onto the PE array, co-exploring
hardware and mapping, and regenerating the paper's tables and figures.
"""

from .main import main

__all__ = ["main"]
