"""Evaluation backends: serial and process-pool population evaluation.

See :mod:`repro.parallel.backend` for the design discussion. The search
loops (:mod:`repro.ga`, :mod:`repro.dse`) accept any object satisfying
the :class:`EvaluationBackend` protocol; ``resolve_backend(workers)``
turns a CLI/config worker count into the right implementation.
"""

from .backend import (
    EvaluationBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from .tasks import CostTask, ParetoCostTask

__all__ = [
    "EvaluationBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "CostTask",
    "ParetoCostTask",
]
