"""Picklable evaluation tasks shipped to backend workers.

A task wraps the objects a worker needs to price genomes — the
:class:`~repro.ga.problem.OptimizationProblem` (and through it the
:class:`~repro.cost.evaluator.Evaluator` with its LRU caches) — behind a
plain ``__call__``. The task is pickled once per worker at pool startup,
so each worker evolves its own caches across a whole search run instead
of re-pickling state per genome — and because the parent's evaluator
state rides along in that pickle, workers start with whatever profile
and summary caches the parent had already warmed (e.g. from in-situ
repair of the first population).

Tasks optionally expose duck-typed protocols the backend layer uses:

* ``prime(items)`` — population batch pricing: before evaluating a
  batch/chunk item-by-item, all its unseen subgraphs are priced at once
  through :meth:`~repro.cost.evaluator.Evaluator.prime_summaries`
  (shape-class tensor batching + closed-form direct solves). A pure
  cache fill — per-item results are bit-identical with or without it.
* ``stats()`` / ``absorb_stats()`` — cache counters and stage timings,
  merged back into the parent after every map so
  ``num_profile_calls`` / ``num_cost_calls`` / ``timings`` reflect the
  whole run's work no matter where it executed.
* ``enable_warm()`` / ``drain_warm()`` / ``absorb_warm()`` — cache-warm
  state: compact per-subgraph summary scalars freshly computed by one
  process, shipped to the others so no subgraph is priced twice across
  the pool. Evaluation is pure, so absorbed entries are bit-identical
  to what the receiver would have computed itself.

The classes here reference the problem and evaluator purely through duck
typing, keeping :mod:`repro.parallel` importable from anywhere in the
package without cycles.
"""

from __future__ import annotations

from typing import Any, Iterable


class _EvaluatorStatsMixin:
    """Cache-statistics and warm-state plumbing for evaluator tasks."""

    problem: Any

    def stats(self) -> dict[str, float]:
        return self.problem.evaluator.stats()

    def absorb_stats(self, delta: dict[str, float]) -> None:
        self.problem.evaluator.absorb_stats(delta)

    # Warm-state protocol (see repro.parallel.backend).
    def enable_warm(self) -> None:
        self.problem.evaluator.enable_summary_log()

    def drain_warm(self) -> list[tuple]:
        return self.problem.evaluator.drain_summary_log()

    def absorb_warm(self, entries: Iterable[tuple]) -> None:
        self.problem.evaluator.absorb_summaries(entries)


class CostTask(_EvaluatorStatsMixin):
    """Scalar Formula 1/2 objective of one genome (GA / SA / two-step)."""

    def __init__(self, problem: Any) -> None:
        self.problem = problem

    def prime(self, genomes: Iterable[Any]) -> None:
        """Batch-price a chunk's unseen subgraphs before per-genome calls."""
        self.problem.prime(list(genomes))

    def __call__(self, genome: Any) -> float:
        return self.problem.cost(genome)


class ParetoCostTask(_EvaluatorStatsMixin):
    """Metric cost of one genome under its own memory (NSGA-II).

    Returns only the metric axis; the capacity axis is a pure attribute
    of the genome's memory configuration and is derived in the parent.
    Uses the evaluator's incremental summary path when the problem runs
    incrementally (the default) — the metric value is bit-identical.
    """

    def __init__(self, problem: Any, metric: Any) -> None:
        self.problem = problem
        self.metric = metric

    def prime(self, genomes: Iterable[Any]) -> None:
        """Batch-price a chunk's unseen subgraphs before per-genome calls."""
        problem = self.problem
        if not (
            getattr(problem, "incremental", False)
            and getattr(problem, "batch_pricing", False)
        ):
            return
        genomes = list(genomes)
        if genomes:
            problem.evaluator.prime_summaries(
                [g.partition.subgraph_sets for g in genomes],
                [g.memory for g in genomes],
            )

    def __call__(self, genome: Any) -> float:
        from ..cost.objective import partition_objective

        evaluator = self.problem.evaluator
        if getattr(self.problem, "incremental", False):
            cost = evaluator.summarize(
                genome.partition.subgraph_sets, genome.memory
            )
        else:
            cost = evaluator.evaluate(
                genome.partition.subgraph_sets, genome.memory
            )
        if not cost.feasible:
            return float("inf")
        return partition_objective(cost, self.metric)
