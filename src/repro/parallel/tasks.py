"""Picklable evaluation tasks shipped to backend workers.

A task wraps the objects a worker needs to price genomes — the
:class:`~repro.ga.problem.OptimizationProblem` (and through it the
:class:`~repro.cost.evaluator.Evaluator` with its LRU caches) — behind a
plain ``__call__``. The task is pickled once per worker at pool startup,
so each worker evolves its own caches across a whole search run instead
of re-pickling state per genome.

Tasks optionally expose ``stats()`` / ``absorb_stats()`` so the backend
can merge the workers' evaluator cache counters back into the parent
process: ``num_profile_calls`` / ``num_cost_calls`` then reflect the
whole run's work no matter where it executed.

The classes here reference the problem and evaluator purely through duck
typing, keeping :mod:`repro.parallel` importable from anywhere in the
package without cycles.
"""

from __future__ import annotations

from typing import Any


class _EvaluatorStatsMixin:
    """Cache-statistics plumbing shared by evaluator-backed tasks."""

    problem: Any

    def stats(self) -> dict[str, int]:
        evaluator = self.problem.evaluator
        return {
            "profile_calls": evaluator.num_profile_calls,
            "cost_calls": evaluator.num_cost_calls,
        }

    def absorb_stats(self, delta: dict[str, int]) -> None:
        evaluator = self.problem.evaluator
        evaluator.num_profile_calls += delta.get("profile_calls", 0)
        evaluator.num_cost_calls += delta.get("cost_calls", 0)


class CostTask(_EvaluatorStatsMixin):
    """Scalar Formula 1/2 objective of one genome (GA / SA / two-step)."""

    def __init__(self, problem: Any) -> None:
        self.problem = problem

    def __call__(self, genome: Any) -> float:
        return self.problem.cost(genome)


class ParetoCostTask(_EvaluatorStatsMixin):
    """Metric cost of one genome under its own memory (NSGA-II).

    Returns only the metric axis; the capacity axis is a pure attribute
    of the genome's memory configuration and is derived in the parent.
    """

    def __init__(self, problem: Any, metric: Any) -> None:
        self.problem = problem
        self.metric = metric

    def __call__(self, genome: Any) -> float:
        from ..cost.objective import partition_objective

        cost = self.problem.evaluator.evaluate(
            genome.partition.subgraph_sets, genome.memory
        )
        if not cost.feasible:
            return float("inf")
        return partition_objective(cost, self.metric)
