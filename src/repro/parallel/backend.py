"""Population-evaluation backends for the co-exploration search loops.

The genetic co-exploration of Sec 4.4 evaluates ~100-genome populations
for ~50 generations, and every genome evaluation prices its subgraphs
through the simulator — the single hottest path in the repository. Genome
evaluation is *pure* (a deterministic function of the genome and the
frozen accelerator/memory configuration), so a generation's unevaluated
genomes can fan out to worker processes without changing any result: the
search loops stay bit-identical to serial execution for a fixed seed,
only the wall-clock changes.

Two backends implement the :class:`EvaluationBackend` protocol:

* :class:`SerialBackend` — evaluates in the calling process; the default
  and the reference behavior.
* :class:`ProcessPoolBackend` — fans batches out to a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor`. Each worker holds its
  own evaluation task (and therefore its own :class:`~repro.cost.
  evaluator.Evaluator` with its LRU profile/cost caches), initialized
  once per pool so the task is pickled once instead of per genome.
  Genomes are shipped in chunks to amortize pickling overhead, and the
  workers' evaluator cache statistics are merged back into the parent's
  counters after every map call.

Tasks are plain picklable callables (see :mod:`repro.parallel.tasks`);
the backend layer knows nothing about genomes or evaluators, which keeps
it import-cycle-free beneath :mod:`repro.ga` and :mod:`repro.dse`.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from ..errors import ConfigError
from ..obs import span

#: Chunks per worker when no explicit chunk size is given: small enough to
#: load-balance uneven genomes, large enough to amortize pickling.
_CHUNKS_PER_WORKER = 4


@runtime_checkable
class EvaluationBackend(Protocol):
    """Maps a picklable task over a batch of items, preserving order."""

    def map(self, task: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Return ``[task(item) for item in items]`` (possibly in parallel)."""
        ...

    def close(self) -> None:
        """Release any worker resources; the backend may be reused after."""
        ...


class SerialBackend:
    """Reference backend: evaluates every item in the calling process."""

    def map(self, task: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        with span("parallel.map", backend="serial", items=len(items)):
            if hasattr(task, "prime"):
                # Batch-price the whole batch's unseen subgraphs first (pure
                # cache fill — per-item results are bit-identical).
                task.prime(items)
            return [task(item) for item in items]

    def close(self) -> None:  # nothing to release
        return None

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker-process plumbing. The task is shipped once per worker through the
# pool initializer; chunks then reference it through a module global.
# ---------------------------------------------------------------------------
_WORKER_TASK: Callable[[Any], Any] | None = None
_WORKER_WARM = False


def _init_worker(task: Callable[[Any], Any], warm: bool = False) -> None:
    global _WORKER_TASK, _WORKER_WARM
    _WORKER_TASK = task
    _WORKER_WARM = warm and hasattr(task, "enable_warm")
    if _WORKER_WARM:
        task.enable_warm()


def _run_chunk(
    chunk: list[Any], warm: list[Any] | None = None
) -> tuple[list[Any], dict[str, float] | None, list[Any] | None]:
    """Evaluate one chunk in a worker.

    Returns results plus the stats deltas and the warm-state entries
    (fresh per-subgraph summaries) this chunk produced. ``warm`` carries
    the other processes' entries from the previous round; absorbing them
    is idempotent and lets this worker skip re-pricing those subgraphs.
    """
    task = _WORKER_TASK
    assert task is not None, "worker used before initialization"
    if warm and hasattr(task, "absorb_warm"):
        task.absorb_warm(warm)
    before = task.stats() if hasattr(task, "stats") else None
    if hasattr(task, "prime"):
        # Batch-price the chunk's unseen subgraphs (after absorbing warm
        # state, so already-shipped summaries are not re-priced).
        task.prime(chunk)
    results = [task(item) for item in chunk]
    fresh = task.drain_warm() if _WORKER_WARM else None
    if before is None:
        return results, None, fresh
    after = task.stats()
    delta = {key: after[key] - before.get(key, 0) for key in after}
    return results, delta, fresh


class ProcessPoolBackend:
    """Fans batches out to worker processes, each with its own caches.

    The pool is created lazily on the first :meth:`map` call and is keyed
    to the task object's identity: mapping a *different* task tears the
    pool down and rebuilds it with the new task, so callers should reuse
    one task object per search run (the search loops do this through
    :meth:`repro.ga.problem.OptimizationProblem.cost_batch`). Results come
    back in input order, and any exception raised inside a worker
    propagates to the caller.

    Parameters
    ----------
    workers:
        Worker-process count; defaults to ``os.cpu_count()``.
    chunk_size:
        Genomes per work unit. Defaults to splitting the batch into
        roughly four chunks per worker.
    merge_stats:
        When true (default) and the task exposes ``stats()`` /
        ``absorb_stats()``, the workers' evaluator cache counters are
        folded back into the parent task after every map.
    share_warm_state:
        When true (default) and the task exposes the warm-state protocol
        (``drain_warm`` / ``absorb_warm``), each map ships the previous
        round's freshly computed per-subgraph summaries to every chunk
        and collects this round's back, so no subgraph is priced twice
        across the whole pool. Purely an exchange of already-computed
        values — results stay bit-identical with it on or off.
    """

    #: Upper bound on warm entries carried between rounds (a runaway
    #: guard; one entry is a few hundred bytes).
    _WARM_OUTBOX_CAP = 50_000

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        merge_stats: bool = True,
        mp_context: Any | None = None,
        share_warm_state: bool = True,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigError("ProcessPoolBackend needs at least one worker")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError("chunk size must be positive")
        self.workers = workers
        self.chunk_size = chunk_size
        self.merge_stats = merge_stats
        self.share_warm_state = share_warm_state
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._pool_task: Callable[[Any], Any] | None = None
        self._warm_outbox: list[Any] = []

    # ------------------------------------------------------------------
    def _chunks(self, items: list[Any]) -> list[list[Any]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(items) / (self.workers * _CHUNKS_PER_WORKER)))
        return [items[i : i + size] for i in range(0, len(items), size)]

    def _executor_for(self, task: Callable[[Any], Any]) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_task is not task:
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(task, self.share_warm_state),
                mp_context=self._mp_context,
            )
            self._pool_task = task
        return self._pool

    # ------------------------------------------------------------------
    def map(self, task: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        items = list(items)
        if not items:
            return []
        with span(
            "parallel.map", backend="process", items=len(items),
            workers=self.workers,
        ):
            return self._map_pooled(task, items)

    def _map_pooled(
        self, task: Callable[[Any], Any], items: list[Any]
    ) -> list[Any]:
        pool = self._executor_for(task)
        warm_capable = self.share_warm_state and hasattr(task, "absorb_warm")
        shipment = self._warm_outbox if warm_capable else None
        results: list[Any] = []
        merged: dict[str, float] = {}
        fresh: dict[Any, Any] = {}
        try:
            # submit() raises BrokenProcessPool too (a worker can die
            # during pool spin-up), so it lives inside the teardown guard.
            futures = [
                pool.submit(_run_chunk, chunk, shipment)
                for chunk in self._chunks(items)
            ]
            for future in futures:
                chunk_results, delta, chunk_warm = future.result()
                results.extend(chunk_results)
                if delta:
                    for key, value in delta.items():
                        merged[key] = merged.get(key, 0) + value
                if warm_capable and chunk_warm:
                    fresh.update(chunk_warm)
        except BrokenProcessPool:
            # A worker died (OOM kill, segfault, os._exit). The executor
            # is permanently broken, so tear it down before re-raising:
            # the next map on this backend builds a fresh pool, letting
            # callers retry the batch instead of inheriting a dead pool.
            self.close()
            raise
        if self.merge_stats and merged and hasattr(task, "absorb_stats"):
            task.absorb_stats(merged)
        if warm_capable:
            # This round's fresh summaries become the next round's
            # shipment (workers already hold everything shipped earlier),
            # and the parent absorbs them so its own serial evaluations
            # stay warm too.
            entries = list(fresh.items())
            task.absorb_warm(entries)
            self._warm_outbox = entries[-self._WARM_OUTBOX_CAP:]
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_task = None
            self._warm_outbox = []

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def resolve_backend(
    workers: int | None, chunk_size: int | None = None
) -> EvaluationBackend:
    """Backend for a worker-count setting: serial for ``None``/``0``/``1``."""
    if workers is None or workers in (0, 1):
        return SerialBackend()
    if workers < 0:
        raise ConfigError("worker count must be non-negative")
    return ProcessPoolBackend(workers=workers, chunk_size=chunk_size)


def cached_map(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    backend: EvaluationBackend,
    key: Callable[[Any], Any],
    lookup: Callable[[Any], Any],
    store: Callable[[Any, Any, Any], Any],
) -> list[Any]:
    """Map ``task`` over ``items``, serving repeats and known keys from a cache.

    The caller provides the cache through three callables: ``key(item)``
    yields the identity, ``lookup(key)`` returns a previous result or
    ``None``, and ``store(key, item, value)`` records a fresh evaluation
    and returns the object to place in the output (letting callers wrap
    the raw value, e.g. into an objective-space point). Only *unique*
    cache misses reach ``backend.map``, in first-occurrence order, so
    evaluation counts match a serial in-order sweep exactly. Both the GA
    fitness cache and the NSGA-II archive batch through here.
    """
    results: list[Any] = []
    pending: dict[Any, list[int]] = {}
    unique: list[Any] = []
    for index, item in enumerate(items):
        item_key = key(item)
        hit = lookup(item_key)
        results.append(hit)
        if hit is None:
            if item_key not in pending:
                pending[item_key] = []
                unique.append(item)
            pending[item_key].append(index)
    if unique:
        values = backend.map(task, unique)
        for item, value in zip(unique, values):
            item_key = key(item)
            final = store(item_key, item, value)
            for index in pending[item_key]:
                results[index] = final
    return results
