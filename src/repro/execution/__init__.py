"""Subgraph execution: the consumption-centric tiling flow of Sec 3."""

from .tiling import NodeTiling, SubgraphTiling, TilingStructure, derive_tiling
from .production import production_tiling
from .schedule import ElementaryOp, elementary_schedule
from .footprint import activation_footprint, node_footprints

__all__ = [
    "NodeTiling",
    "SubgraphTiling",
    "TilingStructure",
    "derive_tiling",
    "production_tiling",
    "ElementaryOp",
    "elementary_schedule",
    "activation_footprint",
    "node_footprints",
]
