"""Activation memory footprint of a tiled subgraph.

Each node keeps ``tile_rows`` rows of its output resident: the MAIN region
holds the current tile and, when tiling is two-dimensional, a SIDE region
keeps the ``tile_rows - delta`` horizontally-overlapping rows for the part
of the width outside the current tile (Fig 7). The default full-width
stripe tiling needs no SIDE region.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TilingError
from ..graphs.graph import ComputationGraph
from .tiling import SubgraphTiling


@dataclass(frozen=True)
class NodeFootprint:
    """MAIN/SIDE region sizes for one node, in bytes."""

    name: str
    main_bytes: int
    side_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.main_bytes + self.side_bytes


def node_footprints(
    graph: ComputationGraph,
    tiling: SubgraphTiling,
    bytes_per_element: int = 1,
    tile_width: int | None = None,
) -> dict[str, NodeFootprint]:
    """Per-node buffer requirement for a derived tiling.

    ``tile_width`` switches to 2D tiles of that width; ``None`` keeps
    full-width stripes.
    """
    footprints: dict[str, NodeFootprint] = {}
    for name, node in tiling.nodes.items():
        shape = graph.layer(name).shape
        rows = min(node.tile_rows, shape.height)
        if tile_width is None or tile_width >= shape.width:
            main = rows * shape.width * shape.channels * bytes_per_element
            side = 0
        else:
            if tile_width <= 0:
                raise TilingError(f"tile width must be positive, got {tile_width}")
            main = rows * tile_width * shape.channels * bytes_per_element
            overlap_rows = max(0, rows - node.delta)
            side = (
                overlap_rows
                * (shape.width - tile_width)
                * shape.channels
                * bytes_per_element
            )
        footprints[name] = NodeFootprint(name=name, main_bytes=main, side_bytes=side)
    return footprints


def activation_footprint(
    graph: ComputationGraph,
    tiling: SubgraphTiling,
    bytes_per_element: int = 1,
    tile_width: int | None = None,
) -> int:
    """Total activation bytes the subgraph needs resident on chip."""
    return sum(
        fp.total_bytes
        for fp in node_footprints(graph, tiling, bytes_per_element, tile_width).values()
    )
