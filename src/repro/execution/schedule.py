"""Elementary-operation schedule for a tiled subgraph (Fig 6).

One *subgraph elementary operation* advances every node ``u`` by
``upd_num(u) * delta(u)`` rows of its output. The schedule enumerates, per
operation, the half-open row range ``[start, end)`` each node computes (or
loads, for interface inputs), reproducing the paper's memory-snapshot
diagram. The first operation additionally fills the warm-up window: a node
whose tile is larger than its offset must pre-produce ``tile - delta``
rows before steady-state sliding begins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.graph import ComputationGraph
from .tiling import SubgraphTiling


@dataclass(frozen=True)
class ElementaryOp:
    """Row ranges advanced by one elementary operation."""

    index: int
    ranges: dict[str, tuple[int, int]]

    def rows(self, name: str) -> int:
        """Rows of ``name`` produced during this operation."""
        start, end = self.ranges[name]
        return end - start


def elementary_schedule(
    graph: ComputationGraph,
    tiling: SubgraphTiling,
    max_ops: int | None = None,
) -> list[ElementaryOp]:
    """Enumerate the subgraph's elementary operations in order.

    ``max_ops`` truncates the schedule (useful for demos on big tensors);
    by default all ``tiling.num_elementary_ops`` operations are produced.
    """
    total = tiling.num_elementary_ops
    if max_ops is not None:
        total = min(total, max_ops)
    cursor = {name: 0 for name in tiling.nodes}
    schedule: list[ElementaryOp] = []
    for index in range(total):
        ranges: dict[str, tuple[int, int]] = {}
        for name, node in tiling.nodes.items():
            height = graph.layer(name).shape.height
            start = cursor[name]
            advance = node.rows_per_op
            if index == 0:
                # Warm-up: fill the whole tile on the first operation.
                advance = max(advance, node.tile_rows)
            end = min(height, start + advance)
            ranges[name] = (start, end)
            cursor[name] = end
        schedule.append(ElementaryOp(index=index, ranges=ranges))
        if all(
            cursor[name] >= graph.layer(name).shape.height for name in tiling.nodes
        ):
            break
    return schedule
