"""Shape-class batching and analytical direct solves for tiling options.

Population pricing (:mod:`repro.cost.batch`) dedupes the unseen
subgraphs of a whole population and groups them by
:attr:`~repro.execution.tiling.TilingStructure.signature`. Every input
of the stage 1-3 solves lives in that signature, so a shape class pays
for one base solve, one option-table walk, and one saturation analysis
no matter how many subgraphs (differing only in node names and per-row
byte widths) share it — :func:`scan_table` produces the class-wide
candidate table whose footprints each subgraph finishes with a single
dot product against its own row-byte vector.

:class:`LinearTileModel` goes one step further, in the spirit of GOMA's
analytical mapping (PAPERS.md): when the cost-vs-``output_tile_rows``
surface is provably linear over the scanned candidate range (integer
base solution, no ``full_input`` requirement, no output-height cap
binding), the activation footprint of candidate ``c`` is exactly
``A*c + B`` with per-subgraph constants, strictly increasing in ``c``,
while the elementary-operation count is non-increasing. The pricing
scan then collapses to a closed form — "largest kept candidate whose
footprint fits the activation buffer" — and feasibility probes to
"footprint of the first kept candidate". The preconditions are checked
exactly; any class failing them keeps the ordinary scan, so results
stay bit-identical to :mod:`repro.cost.reference` either way (locked by
``tests/execution/test_tiling_batch.py`` over the whole model zoo).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

from .tiling import TilingStructure


def member_max_height(structure: TilingStructure) -> int:
    """Largest member output height — the profiling candidate cutoff."""
    return max(
        height
        for height, is_member in zip(structure.heights, structure.is_member)
        if is_member
    )


def _materialize_rows(delta: list, tile: list, heights: list[int]) -> list[int]:
    """Per-node resident rows ``x`` for one solved candidate (exact)."""
    rows = []
    for i, height in enumerate(heights):
        d = min(max(1, math.ceil(delta[i])), height)
        rows.append(min(max(d, math.ceil(tile[i])), height))
    return rows


def scan_table(
    structure: TilingStructure, tile_candidates: tuple[int, ...]
) -> list[tuple[int, list[int], int]]:
    """Per-candidate ``(tile_rows, x_rows, num_ops)`` rows for one class.

    Visits exactly the candidates
    :func:`repro.cost.ema._select_options` asks a subgraph of this shape
    class to price — its stop conditions (member height cutoff, first
    single-operation schedule, saturation) read only class-level data —
    so one table serves every member of the class. A subgraph's
    activation footprint for a candidate is the dot product of that
    candidate's ``x_rows`` with the subgraph's row-byte vector.
    """
    max_height = member_max_height(structure)
    stable_after = structure.saturation
    table: list[tuple[int, list[int], int]] = []
    for tile_rows in tile_candidates:
        if table and tile_rows > max_height:
            break
        delta, tile, upd = structure.solve(tile_rows)
        num_ops = structure._num_ops(delta, upd)
        table.append(
            (tile_rows, _materialize_rows(delta, tile, structure.heights), num_ops)
        )
        if num_ops == 1:
            break
        if tile_rows >= stable_after:
            break
    return table


class LinearTileModel:
    """Closed-form option table of one provably-linear shape class.

    Valid when (checked exactly by :meth:`build`):

    * the tile candidates are strictly ascending,
    * the base (tile-size-1) solution is all-integer and no
      ``full_input`` requirement participates,
    * every candidate the scan keeps lies at or below the first
      output-height cap (``limit``), so the stage-2 scale fast path is
      exact for all of them.

    Inside that range node ``i``'s resident rows are exactly
    ``slope[i] * c + intercept[i]`` (``slope`` = base delta,
    ``intercept`` = the non-negative window overlap), hence a subgraph's
    activation footprint is ``A*c + B`` with ``A = rows . slope >= 1``
    and ``B = rows . intercept`` — strictly increasing in ``c`` — while
    the elementary-operation count ``ceil(h / (upd * slope * c))`` never
    increases. Under a separate activation buffer the serial pricing
    scan (which skips worse-EMA options and breaks ties toward larger
    tiles) therefore always settles on the *largest kept candidate whose
    footprint fits*, and the profile's minimum activation footprint is
    the *first* kept candidate's — both answered here without building
    any per-subgraph option table.
    """

    __slots__ = ("kept", "kept_ops", "slope", "intercept")

    def __init__(
        self,
        kept: tuple[int, ...],
        kept_ops: tuple[int, ...],
        slope: tuple[int, ...],
        intercept: tuple[int, ...],
    ) -> None:
        self.kept = kept
        self.kept_ops = kept_ops
        self.slope = slope
        self.intercept = intercept

    @classmethod
    def build(
        cls, structure: TilingStructure, tile_candidates: tuple[int, ...]
    ) -> "LinearTileModel | None":
        """The model for one shape class, or ``None`` on any failed check."""
        if not tile_candidates:
            return None
        if any(b <= a for a, b in zip(tile_candidates, tile_candidates[1:])):
            return None  # the monotonicity argument needs ascending candidates
        if any(full is not None for full in structure.full_req):
            return None
        base_delta, _, base_upd = structure.base
        if any(type(d) is not int for d in base_delta):
            return None
        heights = structure.heights
        slope = tuple(base_delta)
        intercept: list[int] = []
        limit: int | None = None  # largest c with no height cap binding
        for i, info in enumerate(structure.kids_info):
            height = heights[i]
            if not info:
                offset = 0
                cap = height
            else:
                affine = structure.aff_max[i]
                if affine is None:  # defensive: full-only nodes were rejected
                    return None
                offset = affine if affine > 0 else 0
                cap = (height - offset) // slope[i]
            intercept.append(offset)
            if limit is None or cap < limit:
                limit = cap
        if limit is None or limit < tile_candidates[0]:
            return None
        max_height = member_max_height(structure)
        stable_after = structure.saturation
        leaves = structure.leaves
        kept: list[int] = []
        kept_ops: list[int] = []
        for c in tile_candidates:
            if kept and c > max_height:
                break
            if c > limit:
                return None  # a cap binds inside the scanned range
            num_ops = 1
            for i in leaves:
                ops = math.ceil(heights[i] / (base_upd[i] * slope[i] * c))
                if ops > num_ops:
                    num_ops = ops
            kept.append(c)
            kept_ops.append(num_ops)
            if num_ops == 1:
                break
            if c >= stable_after:
                break
        return cls(tuple(kept), tuple(kept_ops), slope, tuple(intercept))

    # ------------------------------------------------------------------
    def min_activation_bytes(self, row_bytes: Sequence[int]) -> int:
        """Footprint of the smallest kept candidate (= the profile's min)."""
        c = self.kept[0]
        total = 0
        for s, o, r in zip(self.slope, self.intercept, row_bytes):
            total += (c * s + o) * r
        return total

    def choose(
        self, footprint_slope: int, footprint_intercept: int, capacity: int
    ) -> int:
        """Index of the best feasible kept candidate, or ``-1``.

        ``footprint_slope``/``footprint_intercept`` are the subgraph's
        ``A``/``B`` constants; feasibility is ``A*c + B <= capacity``.
        """
        c_max = (capacity - footprint_intercept) // footprint_slope
        return bisect_right(self.kept, c_max) - 1
