"""Production-centric subgraph execution — the strawman of Fig 4(a).

The production-centric scheme pushes data forward: each step the inputs
advance by a fixed number of rows and every node produces as many output
rows as its inputs allow. Because branches with different kernels and
strides consume at different rates, rows pile up in the buffer until the
slowest branch catches up ("extra data cached in buffer" in Fig 4). This
module simulates that flow to measure its peak footprint, which the tests
and Fig-4 example compare against the consumption-centric scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TilingError
from ..graphs.graph import ComputationGraph


@dataclass(frozen=True)
class ProductionStep:
    """Snapshot after one production-centric step."""

    step: int
    produced_rows: dict[str, int]
    resident_rows: dict[str, int]

    @property
    def resident_total(self) -> int:
        return sum(self.resident_rows.values())


@dataclass(frozen=True)
class ProductionTiling:
    """Result of simulating the production-centric scheme."""

    steps: tuple[ProductionStep, ...]
    peak_footprint_bytes: int
    peak_resident_rows: dict[str, int]


def _producible(
    graph: ComputationGraph, name: str, available: dict[str, int]
) -> int:
    """Output rows of ``name`` computable from currently produced inputs."""
    spec = graph.layer(name)
    height = spec.shape.height
    parents = graph.predecessors(name)
    rows = height
    for parent in parents:
        have = available[parent]
        if spec.full_input:
            ready = height if have >= graph.layer(parent).shape.height else 0
        elif spec.upsample_factor > 1:
            ready = have * spec.upsample_factor
        else:
            ready = max(0, (have - spec.kernel) // spec.stride + 1)
            if have >= graph.layer(parent).shape.height:
                ready = height
        rows = min(rows, ready)
    return min(rows, height)


def production_tiling(
    graph: ComputationGraph,
    members: frozenset[str] | set[str],
    input_step_rows: int = 1,
    bytes_per_element: int = 1,
) -> ProductionTiling:
    """Simulate the production-centric scheme over a subgraph.

    ``input_step_rows`` is how many new rows each interface input loads per
    step. Returns per-step snapshots and the peak activation footprint.
    """
    members = frozenset(members)
    if not members:
        raise TilingError("cannot simulate an empty subgraph")
    if input_step_rows <= 0:
        raise TilingError(f"input step must be positive, got {input_step_rows}")

    interface = sorted(
        {
            parent
            for name in members
            for parent in graph.predecessors(name)
            if parent not in members
        }
    )
    local = [n for n in graph.topological_order() if n in members or n in interface]
    consumers = {
        n: tuple(s for s in graph.successors(n) if s in members) for n in local
    }

    produced = {n: 0 for n in local}
    steps: list[ProductionStep] = []
    peak_bytes = 0
    peak_rows: dict[str, int] = dict(produced)
    step = 0
    max_steps = max(graph.layer(n).shape.height for n in interface or local)
    max_steps = max_steps // input_step_rows + len(local) + 2

    while True:
        step += 1
        for name in interface:
            height = graph.layer(name).shape.height
            produced[name] = min(height, produced[name] + input_step_rows)
        for name in local:
            if name in members:
                produced[name] = max(
                    produced[name], _producible(graph, name, produced)
                )
        resident: dict[str, int] = {}
        for name in local:
            kids = consumers[name]
            if not kids:
                # Subgraph outputs stream out; only the newest rows linger.
                resident[name] = min(produced[name], input_step_rows)
                continue
            keep_from = produced[name]
            for kid in kids:
                kid_spec = graph.layer(kid)
                if kid_spec.full_input:
                    keep_from = 0
                    continue
                if kid_spec.upsample_factor > 1:
                    consumed = produced[kid] // kid_spec.upsample_factor
                else:
                    consumed = produced[kid] * kid_spec.stride - (
                        kid_spec.kernel - kid_spec.stride
                    )
                keep_from = min(keep_from, max(0, consumed))
            resident[name] = produced[name] - keep_from
        snapshot = ProductionStep(
            step=step, produced_rows=dict(produced), resident_rows=resident
        )
        steps.append(snapshot)
        footprint = sum(
            rows * graph.layer(n).shape.width * graph.layer(n).shape.channels
            for n, rows in resident.items()
        ) * bytes_per_element
        if footprint > peak_bytes:
            peak_bytes = footprint
            peak_rows = dict(resident)
        done = all(
            produced[n] >= graph.layer(n).shape.height for n in local
        )
        if done or step >= max_steps:
            break

    return ProductionTiling(
        steps=tuple(steps),
        peak_footprint_bytes=peak_bytes,
        peak_resident_rows=peak_rows,
    )
