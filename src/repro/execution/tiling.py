"""Consumption-centric subgraph tiling — the paper's three-stage flow (Sec 3.1).

Given a subgraph (a set of layers plus the external producers feeding it),
the flow determines for every node ``u``:

* ``delta`` — the update offset Δ(u): how many new rows of ``u``'s output
  are materialized per memory update,
* ``tile_rows`` — the allocated tile size x(u): how many rows of ``u``'s
  output must stay resident so every consumer can read its window,
* ``upd_num`` — how many Δ-updates of ``u`` one *subgraph elementary
  operation* performs.

Stage 1 fixes Δ = x = ``output_tile_rows`` for the subgraph's output
nodes. Stage 2 walks the subgraph in reverse topological order, aligning a
producer's offset to all of its consumers with a least-common-multiple:
``Δ(u) = lcm over children v of Δ(v) * s(v)``, and sizing the tile as
``x(u) = max over v of f_v(Δ(u) / s(v))`` with ``f_v(x) = F(v) + (x-1) * s(v)``.
Stage 3 balances production and consumption — for each edge,
``upd_num(u) * Δ(u) = upd_num(v) * Δ(v) * s(v)`` — and takes the co-prime
minimal integer solution.

Rows are tracked as :class:`fractions.Fraction` internally because
``full_input`` consumers (attention, flatten, global pooling) induce
rational consumption ratios; results are materialized as integers capped
at each tensor's real height.

Two implementations coexist:

* :func:`derive_tiling` — the straightforward reference implementation,
  re-deriving everything from the graph on every call. It is retained
  verbatim as the equivalence oracle for the fast path and for one-shot
  callers (CLI ``tiling``/``trace``).
* :class:`TilingStructure` — the single-pass engine used by the
  evaluation hot path. It derives the subgraph's *structure* (local
  adjacency, consumption ratios, window offsets, production/consumption
  rate relations) exactly once, solves the stages at tile size 1, and
  re-prices further tile candidates by exact linear rescaling (LCMs over
  positive rationals scale linearly, and the rate vector is invariant
  under that scaling) whenever no output-height cap binds — falling back
  to a full, still graph-access-free, numeric walk when one does. The
  results are bit-identical to :func:`derive_tiling` for every tile size
  (enforced by ``tests/execution/test_tiling_structure.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from functools import reduce
from typing import Sequence

from ..errors import TilingError
from ..graphs.graph import ComputationGraph


@dataclass(frozen=True)
class NodeTiling:
    """Derived execution parameters for one node of a subgraph."""

    name: str
    delta: int
    tile_rows: int
    upd_num: int
    is_interface_input: bool
    is_output: bool

    @property
    def rows_per_op(self) -> int:
        """Rows of this node's output advanced per elementary operation."""
        return self.delta * self.upd_num


@dataclass(frozen=True)
class SubgraphTiling:
    """The complete execution scheme of one subgraph."""

    nodes: dict[str, NodeTiling]
    output_tile_rows: int
    num_elementary_ops: int

    def __getitem__(self, name: str) -> NodeTiling:
        return self.nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    @property
    def interface_inputs(self) -> tuple[str, ...]:
        """Names of external producers feeding the subgraph."""
        return tuple(n for n, t in self.nodes.items() if t.is_interface_input)

    @property
    def members(self) -> tuple[str, ...]:
        """Names of the subgraph's own layers."""
        return tuple(n for n, t in self.nodes.items() if not t.is_interface_input)

    @property
    def output_nodes(self) -> tuple[str, ...]:
        """Members whose results leave the subgraph."""
        return tuple(
            n for n, t in self.nodes.items() if t.is_output and not t.is_interface_input
        )


def _lcm_rows(values: list) -> "int | Fraction":
    """Least common multiple over positive ints/rationals.

    Integer inputs stay on the fast ``math.lcm`` path; any
    :class:`Fraction` (from a ``full_input`` consumer) switches to the
    rational generalization ``lcm(nums) / gcd(dens)``.
    """
    if all(isinstance(v, int) for v in values):
        return reduce(math.lcm, values)
    fractions = [Fraction(v) for v in values]
    numerator = reduce(math.lcm, (f.numerator for f in fractions))
    denominator = reduce(math.gcd, (f.denominator for f in fractions))
    return Fraction(numerator, denominator)


def _consumption_ratio(graph: ComputationGraph, producer: str, consumer: str):
    """Input rows of ``producer`` consumed per output row of ``consumer``.

    Ordinary windows consume ``stride`` rows per output row (an int);
    ``full_input`` ops consume the producer's whole tensor over their
    whole output (a rational).
    """
    spec = graph.layer(consumer)
    if spec.full_input:
        in_height = graph.layer(producer).shape.height
        return Fraction(in_height, spec.shape.height)
    if spec.upsample_factor > 1:
        # One producer row yields ``factor`` consumer rows.
        return Fraction(1, spec.upsample_factor)
    return spec.stride


def _local_children(
    graph: ComputationGraph, members: frozenset[str]
) -> dict[str, tuple[str, ...]]:
    """Map every relevant node to its consumers *inside* the subgraph."""
    children: dict[str, tuple[str, ...]] = {}
    for name in sorted(members):
        children[name] = tuple(s for s in graph.successors(name) if s in members)
        for parent in graph.predecessors(name):
            if parent not in members and parent not in children:
                children[parent] = tuple(
                    s for s in graph.successors(parent) if s in members
                )
    # Interface inputs may have been registered before all members were seen;
    # recompute them now that membership is fixed.
    for name in list(children):
        if name not in members:
            children[name] = tuple(s for s in graph.successors(name) if s in members)
    return children


def derive_tiling(
    graph: ComputationGraph,
    members: frozenset[str] | set[str],
    output_tile_rows: int = 1,
) -> SubgraphTiling:
    """Derive the consumption-centric execution scheme for a subgraph.

    ``members`` are the layers computed by the subgraph; external producers
    (earlier subgraphs or model inputs) are added automatically as
    interface inputs. Raises :class:`TilingError` if the subgraph is empty
    or the production/consumption balance has no consistent solution
    (which indicates a malformed graph).
    """
    members = frozenset(members)
    if not members:
        raise TilingError("cannot derive tiling for an empty subgraph")
    if output_tile_rows <= 0:
        raise TilingError(f"output tile rows must be positive, got {output_tile_rows}")
    for name in sorted(members):
        if graph.layer(name).is_input:
            raise TilingError(f"model input {name!r} cannot be a subgraph member")

    children = _local_children(graph, members)
    topo = [n for n in graph.topological_order() if n in children]

    # Stage 2 (with stage 1 seeding the recursion): reverse topological
    # pass. Values stay plain ints unless a full_input consumer introduces
    # a rational ratio.
    delta: dict[str, "int | Fraction"] = {}
    tile: dict[str, "int | Fraction"] = {}
    for name in reversed(topo):
        height = graph.layer(name).shape.height
        kids = children[name]
        if not kids:
            rows = min(output_tile_rows, height)
            delta[name] = rows
            tile[name] = rows
            continue
        offsets = []
        requirements = []
        for kid in kids:
            spec = graph.layer(kid)
            if spec.streaming:
                # Streaming reductions consume row by row into an
                # accumulator: the producer advances at its own chunk
                # granularity and nothing has to stay resident.
                offsets.append(delta[kid])
                continue
            ratio = _consumption_ratio(graph, name, kid)
            offsets.append(delta[kid] * ratio)
            if spec.full_input:
                requirements.append(height)
        # The step stays uncapped here so the balance algebra remains exact
        # on reconvergent paths; materialization caps rows at the tensor
        # height at the very end.
        step = _lcm_rows(offsets)
        for kid in kids:
            spec = graph.layer(kid)
            if spec.streaming:
                requirements.append(step)
                continue
            if spec.full_input:
                continue
            if spec.upsample_factor > 1:
                # ``step`` producer rows replicate into ``step * factor``
                # consumer rows; the window never exceeds the step itself.
                requirements.append(step)
                continue
            # f_v(step / s) = F + (step/s - 1) * s = F + step - s.
            requirements.append(spec.kernel + step - spec.stride)
        delta[name] = step
        tile[name] = min(max(requirements), height)

    # Stage 3: solve the production/consumption balance. Each edge (u, v)
    # imposes rate(u) * Δ(u) = rate(v) * Δ(v) * ratio(u, v); the constraint
    # graph is solved per weakly-connected component by BFS from a root
    # pinned to 1, deriving neighbors in both directions, then verified.
    neighbors: dict[str, list[tuple[str, Fraction]]] = {n: [] for n in topo}
    for name in topo:
        for kid in children[name]:
            ratio = _consumption_ratio(graph, name, kid)
            # rate(kid) = rate(name) * factor ; rate(name) = rate(kid) / factor
            factor = Fraction(delta[name]) / (delta[kid] * ratio)
            neighbors[name].append((kid, factor))
            neighbors[kid].append((name, 1 / factor))
    rate: dict[str, Fraction] = {}
    for root in topo:
        if root in rate:
            continue
        rate[root] = Fraction(1)
        queue = [root]
        while queue:
            node = queue.pop()
            for other, factor in neighbors[node]:
                implied = rate[node] * factor
                existing = rate.get(other)
                if existing is None:
                    rate[other] = implied
                    queue.append(other)
                elif existing != implied:
                    raise TilingError(
                        f"inconsistent production/consumption balance at "
                        f"{other!r}: {existing} vs {implied}"
                    )

    # Normalize rates to the minimal co-prime positive integer vector.
    denominator = reduce(math.lcm, (r.denominator for r in rate.values()))
    scaled = [r * denominator for r in rate.values()]
    common = reduce(math.gcd, (int(s) for s in scaled))
    upd_num = {
        name: int(rate[name] * denominator) // common for name in rate
    }

    node_tilings: dict[str, NodeTiling] = {}
    num_ops = 1
    for name in topo:
        height = graph.layer(name).shape.height
        is_member = name in members
        is_output = is_member and not children[name]
        if is_output:
            ops = math.ceil(height / (upd_num[name] * delta[name]))
            num_ops = max(num_ops, ops)
        d = min(max(1, math.ceil(delta[name])), height)
        x = min(max(d, math.ceil(tile[name])), height)
        node_tilings[name] = NodeTiling(
            name=name,
            delta=d,
            tile_rows=x,
            upd_num=upd_num[name],
            is_interface_input=not is_member,
            is_output=is_output,
        )

    return SubgraphTiling(
        nodes=node_tilings,
        output_tile_rows=output_tile_rows,
        num_elementary_ops=num_ops,
    )


# ---------------------------------------------------------------------------
# Single-pass tiling: derive the structure once, price candidates cheaply.
# ---------------------------------------------------------------------------

#: Consumer kinds, in the priority order the reference walk checks them.
_STREAMING, _FULL, _UPSAMPLE, _WINDOW = 0, 1, 2, 3


class TilingStructure:
    """The tile-size-independent structure of one subgraph's tiling.

    Construction performs the only graph traversal: it resolves the local
    adjacency (members plus interface inputs), classifies every local
    edge (streaming / full-input / upsample / window), precomputes each
    node's window requirement offset and full-input constant, and solves
    stages 1-3 at ``output_tile_rows = 1`` (which also validates the
    production/consumption balance, raising :class:`TilingError` exactly
    where :func:`derive_tiling` would).

    Pricing a tile candidate ``t`` afterwards touches no graph state:

    * ``t <= scale_limit`` (no output-height cap binds): the stage-2
      offsets are ``t`` times the base solution — exactly, because the
      LCM over positive rationals is linear under common scaling — and
      the stage-3 rate vector is scale-invariant, so only the per-node
      window requirements and the elementary-operation count are
      recomputed (O(nodes) integer arithmetic).
    * ``t > scale_limit``: a full numeric walk over the precomputed
      structure (still no graph access, no layer lookups).

    Both paths reproduce :func:`derive_tiling` bit-for-bit.
    """

    __slots__ = (
        "members",
        "names",
        "heights",
        "is_member",
        "kids_info",
        "aff_max",
        "full_req",
        "leaves",
        "scale_limit",
        "_saturation",
        "_saturated",
        "_base",
        "_signature",
    )

    def __init__(
        self,
        graph: ComputationGraph,
        members: frozenset[str] | set[str],
        solve_base: bool = True,
    ) -> None:
        members = frozenset(members)
        if not members:
            raise TilingError("cannot derive tiling for an empty subgraph")
        for name in sorted(members):
            if graph.layer(name).is_input:
                raise TilingError(
                    f"model input {name!r} cannot be a subgraph member"
                )
        self.members = members
        succ_map = graph.successor_map()
        pred_map = graph.predecessor_map()
        children: dict[str, tuple[str, ...]] = {}
        for name in sorted(members):
            children[name] = tuple(s for s in succ_map[name] if s in members)
            for parent in pred_map[name]:
                if parent not in members and parent not in children:
                    children[parent] = tuple(
                        s for s in succ_map[parent] if s in members
                    )
        topo = [n for n in graph.topological_order() if n in children]
        local = {name: i for i, name in enumerate(topo)}
        count = len(topo)

        self.names: tuple[str, ...] = tuple(topo)
        self.heights: list[int] = [graph.layer(n).shape.height for n in topo]
        self.is_member: list[bool] = [n in members for n in topo]
        # Per node: ((kid_local, kind, stage2_ratio, stage3_ratio), ...).
        kids_info: list[tuple[tuple, ...]] = []
        aff_max: list[int | None] = []
        full_req: list[int | None] = []
        for i, name in enumerate(topo):
            infos = []
            affine: int | None = None
            full: int | None = None
            for kid in children[name]:
                spec = graph.layer(kid)
                ratio3 = _consumption_ratio(graph, name, kid)
                if spec.streaming:
                    infos.append((local[kid], _STREAMING, None, ratio3))
                    affine = max(affine, 0) if affine is not None else 0
                elif spec.full_input:
                    infos.append((local[kid], _FULL, ratio3, ratio3))
                    full = self.heights[i]
                elif spec.upsample_factor > 1:
                    infos.append((local[kid], _UPSAMPLE, ratio3, ratio3))
                    affine = max(affine, 0) if affine is not None else 0
                else:
                    infos.append((local[kid], _WINDOW, ratio3, ratio3))
                    offset = spec.kernel - spec.stride
                    affine = (
                        max(affine, offset) if affine is not None else offset
                    )
            kids_info.append(tuple(infos))
            aff_max.append(affine)
            full_req.append(full)
        self.kids_info = kids_info
        self.aff_max = aff_max
        self.full_req = full_req
        # Interface inputs always have member consumers, so every leaf is
        # a member output node; its height is where the stage-1 cap binds.
        self.leaves: tuple[int, ...] = tuple(
            i for i in range(count) if not kids_info[i]
        )
        self.scale_limit: int = min(self.heights[i] for i in self.leaves)
        # Above every leaf height the stage-1 caps all bind, so the whole
        # solution is constant in the tile size; solved lazily, once.
        self._saturation: int = max(self.heights[i] for i in self.leaves)
        self._saturated: tuple[list, list, list[int]] | None = None
        self._signature: tuple | None = None
        # The base solve also validates the production/consumption
        # balance; ``solve_base=False`` (population batch pricing) defers
        # it so one representative per shape class can solve for all.
        self._base: tuple[list, list, list[int]] | None = None
        if solve_base:
            _ = self.base

    # ------------------------------------------------------------------
    @property
    def base(self) -> tuple[list, list, list[int]]:
        """The tile-size-1 ``(delta, tile, upd)`` solution (solved once)."""
        if self._base is None:
            base_delta, base_tile = self._solve_deltas(1)
            self._base = (base_delta, base_tile, self._solve_rates(base_delta))
        return self._base

    def adopt_base(self, other: "TilingStructure") -> None:
        """Share another structure's base solution.

        Only valid between structures with equal :attr:`signature`: the
        stage 1-3 solves read nothing but signature data, so the vectors
        are identical and the batch pricer solves one representative per
        shape class instead of every member. The vectors are never
        mutated after the solve, so sharing the lists is safe.
        """
        self._base = other.base

    @property
    def signature(self) -> tuple:
        """Shape-class key: everything the tile-size solves depend on.

        Two structures with equal signatures have identical base
        solutions, option tables (up to the per-row byte widths, which
        only enter the final footprint dot product), saturation points,
        and failure behaviour; node names and heights of non-local
        layers do not participate.
        """
        sig = self._signature
        if sig is None:
            sig = (
                tuple(self.heights),
                tuple(self.is_member),
                tuple(self.kids_info),
                tuple(self.aff_max),
                tuple(self.full_req),
            )
            self._signature = sig
        return sig

    # ------------------------------------------------------------------
    def _solve_deltas(self, t: int) -> tuple[list, list]:
        """Stages 1+2: the reverse-topological offset/window walk."""
        count = len(self.heights)
        delta: list = [None] * count
        tile: list = [None] * count
        heights = self.heights
        for i in range(count - 1, -1, -1):
            height = heights[i]
            info = self.kids_info[i]
            if not info:
                rows = min(t, height)
                delta[i] = rows
                tile[i] = rows
                continue
            offsets = [
                delta[k] if kind == _STREAMING else delta[k] * ratio2
                for k, kind, ratio2, _ in info
            ]
            step = _lcm_rows(offsets)
            delta[i] = step
            affine = self.aff_max[i]
            full = self.full_req[i]
            if affine is None:
                requirement = full
            elif full is None:
                requirement = step + affine
            else:
                requirement = max(step + affine, full)
            tile[i] = min(requirement, height)
        return delta, tile

    def _solve_rates(self, delta: list) -> list[int]:
        """Stage 3: minimal co-prime production/consumption rates."""
        count = len(self.heights)
        neighbors: list[list[tuple[int, object]]] = [[] for _ in range(count)]
        for i in range(count):
            di = delta[i]
            for k, _kind, _r2, ratio3 in self.kids_info[i]:
                consumed = delta[k] * ratio3
                # Pure-integer edges (the common case for conv nets) stay
                # on int arithmetic; anything rational drops to Fraction.
                if type(di) is int and type(consumed) is int:
                    if di % consumed == 0:
                        factor = di // consumed
                    else:
                        factor = Fraction(di, consumed)
                else:
                    factor = Fraction(di) / consumed
                neighbors[i].append((k, factor))
                inverse = (
                    1 if factor == 1 else
                    Fraction(1, factor) if type(factor) is int else 1 / factor
                )
                neighbors[k].append((i, inverse))
        rate: list = [None] * count
        all_int = True
        for root in range(count):
            if rate[root] is not None:
                continue
            rate[root] = 1
            queue = [root]
            while queue:
                node = queue.pop()
                for other, factor in neighbors[node]:
                    implied = rate[node] * factor
                    existing = rate[other]
                    if existing is None:
                        if type(implied) is not int:
                            all_int = False
                        rate[other] = implied
                        queue.append(other)
                    elif existing != implied:
                        raise TilingError(
                            f"inconsistent production/consumption balance at "
                            f"{self.names[other]!r}: {existing} vs {implied}"
                        )
        if all_int:
            # Every component's root is pinned to 1, so the integer rate
            # vector is already minimal co-prime: gcd must divide 1.
            return rate
        denominator = reduce(
            math.lcm,
            (r.denominator if type(r) is Fraction else 1 for r in rate),
        )
        common = reduce(math.gcd, (int(r * denominator) for r in rate))
        return [int(r * denominator) // common for r in rate]

    # ------------------------------------------------------------------
    def solve(self, output_tile_rows: int) -> tuple[list, list, list[int]]:
        """Uncapped ``(delta, tile, upd_num)`` vectors for one tile size."""
        if output_tile_rows <= 0:
            raise TilingError(
                f"output tile rows must be positive, got {output_tile_rows}"
            )
        t = output_tile_rows
        if t == 1:
            return self.base
        if t > self.scale_limit:
            if t >= self._saturation:
                if self._saturated is None:
                    delta, tile = self._solve_deltas(self._saturation)
                    self._saturated = (delta, tile, self._solve_rates(delta))
                return self._saturated
            delta, tile = self._solve_deltas(t)
            return delta, tile, self._solve_rates(delta)
        # Exact rescaling: no leaf cap binds, so every stage-2 value is t
        # times the base solution and the stage-3 rates are unchanged.
        base_delta, _, base_upd = self.base
        delta = [d * t for d in base_delta]
        tile: list = [None] * len(delta)
        for i, info in enumerate(self.kids_info):
            if not info:
                tile[i] = delta[i]
                continue
            step = delta[i]
            affine = self.aff_max[i]
            full = self.full_req[i]
            if affine is None:
                requirement = full
            elif full is None:
                requirement = step + affine
            else:
                requirement = max(step + affine, full)
            tile[i] = min(requirement, self.heights[i])
        return delta, tile, base_upd

    @property
    def saturation(self) -> int:
        """Tile size beyond which the solution is constant (caps bind)."""
        return self._saturation

    def _num_ops(self, delta: list, upd: list[int]) -> int:
        ops = 1
        for i in self.leaves:
            ops = max(ops, math.ceil(self.heights[i] / (upd[i] * delta[i])))
        return ops

    def option(
        self, output_tile_rows: int, row_bytes: Sequence[int]
    ) -> tuple[int, int]:
        """``(activation_bytes, num_elementary_ops)`` for one candidate.

        ``row_bytes`` gives each local node's bytes per output row (in
        :attr:`names` order). Equals ``activation_footprint`` of the full
        :meth:`tiling` without materializing any :class:`NodeTiling`.
        """
        delta, tile, upd = self.solve(output_tile_rows)
        heights = self.heights
        footprint = 0
        for i, height in enumerate(heights):
            d = min(max(1, math.ceil(delta[i])), height)
            x = min(max(d, math.ceil(tile[i])), height)
            footprint += x * row_bytes[i]
        return footprint, self._num_ops(delta, upd)

    def tiling(self, output_tile_rows: int) -> SubgraphTiling:
        """Materialize the full scheme (bit-identical to derive_tiling)."""
        delta, tile, upd = self.solve(output_tile_rows)
        node_tilings: dict[str, NodeTiling] = {}
        for i, name in enumerate(self.names):
            height = self.heights[i]
            is_member = self.is_member[i]
            d = min(max(1, math.ceil(delta[i])), height)
            x = min(max(d, math.ceil(tile[i])), height)
            node_tilings[name] = NodeTiling(
                name=name,
                delta=d,
                tile_rows=x,
                upd_num=upd[i],
                is_interface_input=not is_member,
                is_output=is_member and not self.kids_info[i],
            )
        return SubgraphTiling(
            nodes=node_tilings,
            output_tile_rows=output_tile_rows,
            num_elementary_ops=self._num_ops(delta, upd),
        )
