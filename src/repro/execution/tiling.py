"""Consumption-centric subgraph tiling — the paper's three-stage flow (Sec 3.1).

Given a subgraph (a set of layers plus the external producers feeding it),
the flow determines for every node ``u``:

* ``delta`` — the update offset Δ(u): how many new rows of ``u``'s output
  are materialized per memory update,
* ``tile_rows`` — the allocated tile size x(u): how many rows of ``u``'s
  output must stay resident so every consumer can read its window,
* ``upd_num`` — how many Δ-updates of ``u`` one *subgraph elementary
  operation* performs.

Stage 1 fixes Δ = x = ``output_tile_rows`` for the subgraph's output
nodes. Stage 2 walks the subgraph in reverse topological order, aligning a
producer's offset to all of its consumers with a least-common-multiple:
``Δ(u) = lcm over children v of Δ(v) * s(v)``, and sizing the tile as
``x(u) = max over v of f_v(Δ(u) / s(v))`` with ``f_v(x) = F(v) + (x-1) * s(v)``.
Stage 3 balances production and consumption — for each edge,
``upd_num(u) * Δ(u) = upd_num(v) * Δ(v) * s(v)`` — and takes the co-prime
minimal integer solution.

Rows are tracked as :class:`fractions.Fraction` internally because
``full_input`` consumers (attention, flatten, global pooling) induce
rational consumption ratios; results are materialized as integers capped
at each tensor's real height.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from functools import reduce

from ..errors import TilingError
from ..graphs.graph import ComputationGraph


@dataclass(frozen=True)
class NodeTiling:
    """Derived execution parameters for one node of a subgraph."""

    name: str
    delta: int
    tile_rows: int
    upd_num: int
    is_interface_input: bool
    is_output: bool

    @property
    def rows_per_op(self) -> int:
        """Rows of this node's output advanced per elementary operation."""
        return self.delta * self.upd_num


@dataclass(frozen=True)
class SubgraphTiling:
    """The complete execution scheme of one subgraph."""

    nodes: dict[str, NodeTiling]
    output_tile_rows: int
    num_elementary_ops: int

    def __getitem__(self, name: str) -> NodeTiling:
        return self.nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    @property
    def interface_inputs(self) -> tuple[str, ...]:
        """Names of external producers feeding the subgraph."""
        return tuple(n for n, t in self.nodes.items() if t.is_interface_input)

    @property
    def members(self) -> tuple[str, ...]:
        """Names of the subgraph's own layers."""
        return tuple(n for n, t in self.nodes.items() if not t.is_interface_input)

    @property
    def output_nodes(self) -> tuple[str, ...]:
        """Members whose results leave the subgraph."""
        return tuple(
            n for n, t in self.nodes.items() if t.is_output and not t.is_interface_input
        )


def _lcm_rows(values: list) -> "int | Fraction":
    """Least common multiple over positive ints/rationals.

    Integer inputs stay on the fast ``math.lcm`` path; any
    :class:`Fraction` (from a ``full_input`` consumer) switches to the
    rational generalization ``lcm(nums) / gcd(dens)``.
    """
    if all(isinstance(v, int) for v in values):
        return reduce(math.lcm, values)
    fractions = [Fraction(v) for v in values]
    numerator = reduce(math.lcm, (f.numerator for f in fractions))
    denominator = reduce(math.gcd, (f.denominator for f in fractions))
    return Fraction(numerator, denominator)


def _consumption_ratio(graph: ComputationGraph, producer: str, consumer: str):
    """Input rows of ``producer`` consumed per output row of ``consumer``.

    Ordinary windows consume ``stride`` rows per output row (an int);
    ``full_input`` ops consume the producer's whole tensor over their
    whole output (a rational).
    """
    spec = graph.layer(consumer)
    if spec.full_input:
        in_height = graph.layer(producer).shape.height
        return Fraction(in_height, spec.shape.height)
    if spec.upsample_factor > 1:
        # One producer row yields ``factor`` consumer rows.
        return Fraction(1, spec.upsample_factor)
    return spec.stride


def _local_children(
    graph: ComputationGraph, members: frozenset[str]
) -> dict[str, tuple[str, ...]]:
    """Map every relevant node to its consumers *inside* the subgraph."""
    children: dict[str, tuple[str, ...]] = {}
    for name in members:
        children[name] = tuple(s for s in graph.successors(name) if s in members)
        for parent in graph.predecessors(name):
            if parent not in members and parent not in children:
                children[parent] = tuple(
                    s for s in graph.successors(parent) if s in members
                )
    # Interface inputs may have been registered before all members were seen;
    # recompute them now that membership is fixed.
    for name in list(children):
        if name not in members:
            children[name] = tuple(s for s in graph.successors(name) if s in members)
    return children


def derive_tiling(
    graph: ComputationGraph,
    members: frozenset[str] | set[str],
    output_tile_rows: int = 1,
) -> SubgraphTiling:
    """Derive the consumption-centric execution scheme for a subgraph.

    ``members`` are the layers computed by the subgraph; external producers
    (earlier subgraphs or model inputs) are added automatically as
    interface inputs. Raises :class:`TilingError` if the subgraph is empty
    or the production/consumption balance has no consistent solution
    (which indicates a malformed graph).
    """
    members = frozenset(members)
    if not members:
        raise TilingError("cannot derive tiling for an empty subgraph")
    if output_tile_rows <= 0:
        raise TilingError(f"output tile rows must be positive, got {output_tile_rows}")
    for name in members:
        if graph.layer(name).is_input:
            raise TilingError(f"model input {name!r} cannot be a subgraph member")

    children = _local_children(graph, members)
    topo = [n for n in graph.topological_order() if n in children]

    # Stage 2 (with stage 1 seeding the recursion): reverse topological
    # pass. Values stay plain ints unless a full_input consumer introduces
    # a rational ratio.
    delta: dict[str, "int | Fraction"] = {}
    tile: dict[str, "int | Fraction"] = {}
    for name in reversed(topo):
        height = graph.layer(name).shape.height
        kids = children[name]
        if not kids:
            rows = min(output_tile_rows, height)
            delta[name] = rows
            tile[name] = rows
            continue
        offsets = []
        requirements = []
        for kid in kids:
            spec = graph.layer(kid)
            if spec.streaming:
                # Streaming reductions consume row by row into an
                # accumulator: the producer advances at its own chunk
                # granularity and nothing has to stay resident.
                offsets.append(delta[kid])
                continue
            ratio = _consumption_ratio(graph, name, kid)
            offsets.append(delta[kid] * ratio)
            if spec.full_input:
                requirements.append(height)
        # The step stays uncapped here so the balance algebra remains exact
        # on reconvergent paths; materialization caps rows at the tensor
        # height at the very end.
        step = _lcm_rows(offsets)
        for kid in kids:
            spec = graph.layer(kid)
            if spec.streaming:
                requirements.append(step)
                continue
            if spec.full_input:
                continue
            if spec.upsample_factor > 1:
                # ``step`` producer rows replicate into ``step * factor``
                # consumer rows; the window never exceeds the step itself.
                requirements.append(step)
                continue
            # f_v(step / s) = F + (step/s - 1) * s = F + step - s.
            requirements.append(spec.kernel + step - spec.stride)
        delta[name] = step
        tile[name] = min(max(requirements), height)

    # Stage 3: solve the production/consumption balance. Each edge (u, v)
    # imposes rate(u) * Δ(u) = rate(v) * Δ(v) * ratio(u, v); the constraint
    # graph is solved per weakly-connected component by BFS from a root
    # pinned to 1, deriving neighbors in both directions, then verified.
    neighbors: dict[str, list[tuple[str, Fraction]]] = {n: [] for n in topo}
    for name in topo:
        for kid in children[name]:
            ratio = _consumption_ratio(graph, name, kid)
            # rate(kid) = rate(name) * factor ; rate(name) = rate(kid) / factor
            factor = Fraction(delta[name]) / (delta[kid] * ratio)
            neighbors[name].append((kid, factor))
            neighbors[kid].append((name, 1 / factor))
    rate: dict[str, Fraction] = {}
    for root in topo:
        if root in rate:
            continue
        rate[root] = Fraction(1)
        queue = [root]
        while queue:
            node = queue.pop()
            for other, factor in neighbors[node]:
                implied = rate[node] * factor
                existing = rate.get(other)
                if existing is None:
                    rate[other] = implied
                    queue.append(other)
                elif existing != implied:
                    raise TilingError(
                        f"inconsistent production/consumption balance at "
                        f"{other!r}: {existing} vs {implied}"
                    )

    # Normalize rates to the minimal co-prime positive integer vector.
    denominator = reduce(math.lcm, (r.denominator for r in rate.values()))
    scaled = [r * denominator for r in rate.values()]
    common = reduce(math.gcd, (int(s) for s in scaled))
    upd_num = {
        name: int(rate[name] * denominator) // common for name in rate
    }

    node_tilings: dict[str, NodeTiling] = {}
    num_ops = 1
    for name in topo:
        height = graph.layer(name).shape.height
        is_member = name in members
        is_output = is_member and not children[name]
        if is_output:
            ops = math.ceil(height / (upd_num[name] * delta[name]))
            num_ops = max(num_ops, ops)
        d = min(max(1, math.ceil(delta[name])), height)
        x = min(max(d, math.ceil(tile[name])), height)
        node_tilings[name] = NodeTiling(
            name=name,
            delta=d,
            tile_rows=x,
            upd_num=upd_num[name],
            is_interface_input=not is_member,
            is_output=is_output,
        )

    return SubgraphTiling(
        nodes=node_tilings,
        output_tile_rows=output_tile_rows,
        num_elementary_ops=num_ops,
    )
