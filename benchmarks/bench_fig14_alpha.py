"""Figure 14: the alpha knob trades buffer capacity for energy.

Paper claim: increasing alpha makes the optimizer buy more capacity to
reduce energy; normalized energy falls (weakly) as alpha grows.
"""

from repro.experiments import fig14_alpha
from repro.experiments.common import QUICK_SCALE

BENCH_MODELS = ("googlenet", "nasnet")
BENCH_ALPHAS = (5e-4, 2e-3, 1e-2)


def test_fig14_alpha(once):
    result = once(
        fig14_alpha.run, models=BENCH_MODELS, alphas=BENCH_ALPHAS, scale=QUICK_SCALE
    )
    for model in BENCH_MODELS:
        rows = [r for r in result.rows if r[0] == model]
        capacities = [r[2] for r in rows]
        energies = [r[4] for r in rows]
        # Shape: highest alpha buys at least as much capacity as lowest,
        # and its energy is no higher.
        assert capacities[-1] >= capacities[0] * 0.99
        assert energies[-1] <= energies[0] * 1.01
    # NasNet is the memory-hungry model: at the largest alpha it should
    # want at least as much capacity as GoogleNet.
    nasnet_cap = [r[2] for r in result.rows if r[0] == "nasnet"][-1]
    googlenet_cap = [r[2] for r in result.rows if r[0] == "googlenet"][-1]
    assert nasnet_cap >= googlenet_cap
    print()
    print(result.to_text())
