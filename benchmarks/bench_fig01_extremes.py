"""Fig 1: EMA between the streaming and compulsory extremes.

Shape claims: optimized EMA is monotonically non-increasing in capacity
(within search noise), always sits between the two analytic bounds, and
converges to the compulsory bound (weights + model inputs + outputs)
once the buffer holds the whole working set — at which point the
partition collapses to a single subgraph.
"""

from repro.experiments import fig1_extremes
from repro.experiments.common import QUICK_SCALE


def test_fig1_extremes(once):
    result = once(
        fig1_extremes.run,
        models=("mobilenet_v2", "googlenet"),
        scale=QUICK_SCALE,
    )
    print()
    print(result.to_text())

    by_model: dict[str, list[tuple[int, float, float]]] = {}
    for model, cap_kb, ema_mb, of_min, _groups in result.rows:
        by_model.setdefault(model, []).append((cap_kb, ema_mb, of_min))

    for model, rows in by_model.items():
        rows.sort()
        emas = [ema for _cap, ema, _ratio in rows]
        ratios = [ratio for _cap, _ema, ratio in rows]
        floor = result.extra[model]["compulsory_mb"]
        ceiling = result.extra[model]["streaming_mb"]
        # Between the bounds at every capacity (rows carry 2-decimal MB
        # for display, so allow rounding slack).
        for ema in emas:
            assert floor - 0.01 <= ema <= ceiling + 0.01, model
        # Monotone within a small search-noise band.
        for a, b in zip(emas, emas[1:]):
            assert b <= a * 1.02, f"{model}: EMA rose with capacity"
        # The largest capacity reaches the compulsory bound.
        assert ratios[-1] <= 1.05, f"{model}: never converged to min EMA"
        # The smallest capacity pays a real reuse penalty.
        assert ratios[0] > ratios[-1]
