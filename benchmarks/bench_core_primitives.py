"""Micro-benchmarks of the hot primitives inside the search loop.

These use pytest-benchmark's normal multi-round timing: they are the
operations a 50,000-sample exploration executes millions of times, so
their latency determines wall-clock search cost.
"""

import random

import pytest

from repro.cost.evaluator import Evaluator
from repro.execution.tiling import derive_tiling
from repro.ga.crossover import crossover
from repro.ga.genome import Genome
from repro.ga.mutation import modify_node
from repro.graphs.zoo import get_model
from repro.partition.random_init import random_partition
from repro.partition.validity import normalize_groups
from repro.experiments.common import paper_accelerator
from repro.search_space import CapacitySpace


@pytest.fixture(scope="module")
def resnet():
    return get_model("resnet50")


@pytest.fixture(scope="module")
def resnet_block(resnet):
    return frozenset(n for n in resnet.compute_names if n.startswith("res3_1"))


def test_derive_tiling_block(benchmark, resnet, resnet_block):
    benchmark(derive_tiling, resnet, resnet_block, 1)


def test_profile_subgraph_uncached(benchmark, resnet, resnet_block):
    accel = paper_accelerator()

    def profile_fresh():
        evaluator = Evaluator(resnet, accel)
        return evaluator.profile(resnet_block)

    benchmark(profile_fresh)


def test_subgraph_cost_cached(benchmark, resnet, resnet_block):
    evaluator = Evaluator(resnet, paper_accelerator())
    evaluator.subgraph_cost(resnet_block)
    benchmark(evaluator.subgraph_cost, resnet_block)


def test_partition_evaluate(benchmark, resnet):
    evaluator = Evaluator(resnet, paper_accelerator())
    rng = random.Random(0)
    partition = random_partition(resnet, rng, p_new=0.3)
    evaluator.evaluate(partition.subgraph_sets)
    benchmark(evaluator.evaluate, partition.subgraph_sets)


def test_random_partition(benchmark, resnet):
    rng = random.Random(0)
    benchmark(random_partition, resnet, rng, 0.5)


def test_normalize_groups(benchmark, resnet):
    rng = random.Random(0)
    names = list(resnet.compute_names)
    rng.shuffle(names)
    groups = [set(names[i : i + 6]) for i in range(0, len(names), 6)]
    benchmark(normalize_groups, resnet, groups)


def test_crossover(benchmark, resnet):
    rng = random.Random(0)
    space = CapacitySpace.paper_shared()
    dad = Genome(random_partition(resnet, rng, 0.3), space.sample(rng))
    mom = Genome(random_partition(resnet, rng, 0.7), space.sample(rng))
    benchmark(crossover, dad, mom, rng, space)


def test_modify_node_mutation(benchmark, resnet):
    rng = random.Random(0)
    space = CapacitySpace.paper_shared()
    genome = Genome(random_partition(resnet, rng, 0.5), space.sample(rng))
    benchmark(modify_node, genome, rng)
