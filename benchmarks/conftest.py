"""Benchmark-harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper at
the quick search scale and asserts its shape claims, so the benchmark run
doubles as the experiment reproduction log. Experiment benches run one
round (they take seconds to minutes); the micro-benches in
``bench_core_primitives.py`` use normal multi-round timing.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
