"""Multi-objective frontier versus per-alpha scalarized search.

Extension bench: one NSGA-II run should recover the capacity-energy
trade-off that the paper's Fig 14 sweeps alpha-by-alpha. Shape claims:

* the frontier holds multiple points spanning small to large capacities,
* for every alpha of the Fig 14 sweep, reading the frontier off at that
  alpha scalarizes within a tolerance of (or better than) a same-budget
  single-alpha Cocco run,
* the frontier's selected capacity grows with alpha (the Fig 14 trend).
"""

import pytest

from repro.cost.evaluator import Evaluator
from repro.cost.objective import Metric
from repro.dse.cocco import cocco_co_optimize
from repro.dse.nsga import NSGAConfig, nsga2_co_optimize
from repro.experiments.common import paper_accelerator
from repro.ga.engine import GAConfig
from repro.graphs.zoo import get_model
from repro.search_space import CapacitySpace

ALPHAS = (5e-4, 2e-3, 1e-2)


def test_pareto_frontier_vs_alpha_sweep(once):
    def run():
        graph = get_model("googlenet")
        evaluator = Evaluator(graph, paper_accelerator())
        space = CapacitySpace.paper_shared()
        nsga = nsga2_co_optimize(
            evaluator,
            space,
            metric=Metric.ENERGY,
            config=NSGAConfig(population_size=24, generations=10, seed=0),
        )
        scalar = {}
        for alpha in ALPHAS:
            scalar[alpha] = cocco_co_optimize(
                evaluator,
                space,
                metric=Metric.ENERGY,
                alpha=alpha,
                ga_config=GAConfig(population_size=24, generations=10, seed=0),
                refine=False,
            )
        return nsga, scalar

    nsga, scalar = once(run)
    print(f"\nfrontier: {len(nsga.front)} points, "
          f"{nsga.num_evaluations} evaluations")
    for p in nsga.front:
        print(f"  {p.capacity_bytes / 1024:7.0f} KB -> "
              f"{p.metric_cost:.3e} pJ")

    assert len(nsga.front) >= 3, "frontier collapsed to a corner"
    capacities = [p.capacity_bytes for p in nsga.front]
    assert max(capacities) >= 2 * min(capacities), "no capacity spread"

    picks = []
    for alpha in ALPHAS:
        frontier_pick = nsga.select_by_alpha(alpha)
        picks.append(frontier_pick.capacity_bytes)
        frontier_value = frontier_pick.formula2(alpha)
        scalar_value = scalar[alpha].best_cost
        print(f"alpha={alpha:g}: frontier {frontier_value:.4e} "
              f"({frontier_pick.capacity_bytes // 1024} KB) vs "
              f"scalarized {scalar_value:.4e} "
              f"({scalar[alpha].memory.total_bytes // 1024} KB)")
        # One multi-objective run competes with each dedicated run.
        assert frontier_value <= scalar_value * 1.15
    # Larger alpha weights the metric more -> larger chosen capacity.
    assert picks[0] <= picks[-1]
