"""Figure 13: the sample distribution drifts to lower iso-cost intercepts.

Paper claim: across generations the population's samples move toward a
lower ``BUF + alpha * E`` intercept and become more concentrated.
"""

from repro.experiments import fig13_distribution
from repro.experiments.common import QUICK_SCALE

BENCH_MODELS = ("googlenet", "randwire_a")


def test_fig13_distribution(once):
    result = once(fig13_distribution.run, models=BENCH_MODELS, scale=QUICK_SCALE)
    for model in BENCH_MODELS:
        rows = [r for r in result.rows if r[0] == model]
        assert len(rows) >= 3
        intercepts = [float(r[5].replace("E", "e")) for r in rows]
        # Shape: the mean intercept of the final third is below the first
        # third (monotone drift toward cheaper designs).
        third = max(1, len(intercepts) // 3)
        early = sum(intercepts[:third]) / third
        late = sum(intercepts[-third:]) / third
        assert late <= early, f"{model}: no drift toward lower intercept"
    print()
    print(result.to_text())
