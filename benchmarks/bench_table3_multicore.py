"""Table 3: multi-core and batch scaling (shared buffer, energy co-opt).

Paper claims: latency falls with more cores; per-core buffer sizes do not
grow with core count; batch latency scales sub-linearly per sample.
"""

from repro.experiments import table3_multicore
from repro.experiments.common import QUICK_SCALE

BENCH_MODELS = ("googlenet",)
CORES = (1, 2, 4)
BATCHES = (1, 8)


def test_table3_multicore(once):
    result = once(
        table3_multicore.run,
        models=BENCH_MODELS,
        core_counts=CORES,
        batch_sizes=BATCHES,
        scale=QUICK_SCALE,
    )
    rows = {(r[1], r[2]): r for r in result.rows}
    # Shape: four cores cut batch-1 latency versus one core.
    assert rows[(4, 1)][4] < rows[(1, 1)][4]
    # Shape: batch-8 latency is sub-linear (well under 8x batch-1).
    assert rows[(1, 8)][4] < 8 * rows[(1, 1)][4]
    # Shape: per-core buffer need does not grow with cores (batch 1).
    size_1 = float(rows[(1, 1)][5])
    size_4 = float(rows[(4, 1)][5])
    assert size_4 <= size_1 * 1.25
    print()
    print(result.to_text())
