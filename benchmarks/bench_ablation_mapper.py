"""Ablation: mapper-measured utilization versus the flat 0.85 constant.

The cost model's latency path divides MACs by ``peak * pe_utilization``.
DESIGN.md calibrates the flat constant to 0.85; the single-layer mapper
measures the real number per layer (stage-1 of Sec 3.1, "optimized for
higher computation utilization"). This bench checks three shape claims:

* measured utilization genuinely varies across layers (the flat constant
  is hiding structure) — depth-wise-heavy models sit far below dense ones,
* the MAC-weighted aggregate lands in a plausible band around the flat
  calibration for the paper's dense evaluation models,
* re-pricing a partition under the calibrated accelerator changes latency
  but preserves the EMA/energy ordering between partitions (utilization
  touches compute cycles, not the memory trade-off that drives Cocco).
"""

import pytest

from repro.cost.evaluator import Evaluator
from repro.experiments.common import paper_accelerator
from repro.graphs.zoo import get_model
from repro.mapper import calibrated_accelerator, graph_utilization, map_graph
from repro.partition.greedy import greedy_partition


def test_mapper_utilization_structure(once):
    def measure():
        rows = {}
        for name in ("resnet50", "googlenet", "mobilenet_v2", "vit_base16"):
            graph = get_model(name)
            util = graph_utilization(graph)
            rows[name] = util
        return rows

    rows = once(measure)
    print()
    for name, util in rows.items():
        values = sorted(util.per_layer.values())
        print(
            f"{name:>13}: weighted={util.macs_weighted:.3f} "
            f"mean={util.mean:.3f} min={values[0]:.3f} max={values[-1]:.3f}"
        )
    # Dense conv models keep high weighted utilization.
    assert rows["resnet50"].macs_weighted > 0.6
    assert rows["vit_base16"].macs_weighted > 0.6
    # Depth-wise-heavy MobileNet has layers pinned at the 1/8 ceiling, so
    # its unweighted mean sits well below its weighted mean.
    assert rows["mobilenet_v2"].mean < rows["mobilenet_v2"].macs_weighted
    assert min(rows["mobilenet_v2"].per_layer.values()) <= 1 / 8 + 1e-9
    # Utilization varies by layer: the flat constant hides real structure.
    for util in rows.values():
        values = list(util.per_layer.values())
        assert max(values) - min(values) > 0.2


def test_calibrated_pricing_preserves_memory_ordering(once):
    def run():
        graph = get_model("googlenet")
        flat_accel = paper_accelerator()
        mapping = map_graph(graph, flat_accel)
        calibrated = calibrated_accelerator(flat_accel, graph, mapping)

        flat_eval = Evaluator(graph, flat_accel)
        cal_eval = Evaluator(graph, calibrated)

        def cost_fn(members):
            cost = flat_eval.subgraph_cost(members)
            return cost.ema_bytes if cost.feasible else float("inf")

        merged = greedy_partition(graph, cost_fn)
        from repro.partition.partition import Partition

        singles = Partition.singletons(graph)
        out = {}
        for tag, partition in (("merged", merged), ("singles", singles)):
            flat_cost = flat_eval.evaluate(partition.subgraph_sets)
            cal_cost = cal_eval.evaluate(partition.subgraph_sets)
            out[tag] = (flat_cost, cal_cost)
        return calibrated.pe_utilization, out

    weighted, costs = once(run)
    print(f"\ncalibrated utilization: {weighted:.3f}")
    for tag, (flat_cost, cal_cost) in costs.items():
        print(
            f"{tag:>8}: EMA {flat_cost.ema_bytes / 2**20:.1f} MB, "
            f"latency flat={flat_cost.latency_cycles:.3e} "
            f"calibrated={cal_cost.latency_cycles:.3e} cycles"
        )
        # EMA is utilization-independent.
        assert flat_cost.ema_bytes == cal_cost.ema_bytes
    flat_pair = [costs["merged"][0].ema_bytes, costs["singles"][0].ema_bytes]
    cal_pair = [costs["merged"][1].ema_bytes, costs["singles"][1].ema_bytes]
    # The partition ordering that Cocco optimizes survives calibration.
    assert (flat_pair[0] < flat_pair[1]) == (cal_pair[0] < cal_pair[1])
