"""Executable trace versus analytic closed forms, at model scale.

The unit suite cross-checks traces on small random DAGs; this bench runs
the event-level simulator over *every subgraph of a real partition* of
two paper models and verifies, subgraph by subgraph:

* activation IO (input loads + output stores) matches the closed form
  exactly,
* traced EMA never exceeds the analytic EMA (the closed form conservatively
  charges uncached weights for the full operation count),
* peak traced occupancy fits the activation capacity the cost model
  declared feasible.

This is the strongest internal-consistency statement the library makes:
the numbers every experiment reports are reproduced by stepping the
memory scheme event by event.
"""

import pytest

from repro.cost.evaluator import Evaluator
from repro.experiments.common import paper_accelerator
from repro.graphs.zoo import get_model
from repro.memory.trace import trace_subgraph, validate_trace
from repro.partition.greedy import greedy_partition

MODELS = ("googlenet", "mobilenet_v2")


def test_trace_matches_analytic_model(once):
    def run():
        report = []
        for name in MODELS:
            graph = get_model(name)
            accel = paper_accelerator()
            evaluator = Evaluator(graph, accel)

            def cost_fn(members):
                cost = evaluator.subgraph_cost(members)
                return cost.ema_bytes if cost.feasible else float("inf")

            partition = greedy_partition(graph, cost_fn)
            checked = 0
            analytic_total = 0
            traced_total = 0
            for members in partition.subgraph_sets:
                cost = evaluator.subgraph_cost(members)
                assert cost.feasible
                trace = trace_subgraph(
                    graph,
                    members,
                    output_tile_rows=cost.tile_rows,
                    cached_weight_nodes=cost.cached_weight_nodes,
                )
                problems = validate_trace(
                    trace,
                    graph,
                    memory=accel.memory,
                    analytic_ema_bytes=cost.ema_bytes,
                )
                assert problems == [], f"{name}: {problems}"
                analytic_total += cost.ema_bytes
                traced_total += trace.ema_bytes
                checked += 1
            report.append((name, checked, analytic_total, traced_total))
        return report

    report = once(run)
    print()
    for name, checked, analytic, traced in report:
        gap = (analytic - traced) / analytic * 100
        print(f"{name:>13}: {checked} subgraphs, analytic EMA "
              f"{analytic / 2**20:.1f} MB, traced {traced / 2**20:.1f} MB "
              f"(closed form conservative by {gap:.2f}%)")
        assert traced <= analytic
        # The conservatism is bounded: the warm-up can cover at most a
        # few operations' worth of uncached weight streaming.
        assert traced >= analytic * 0.75
