"""Ablations of Cocco's design choices (Sec 4.3's claimed benefits).

Three ablations at a fixed sample budget on GoogleNet partition search:

* no-crossover — mutation-only GA (tests the Fig 9 crossover's value),
* no-repair — infeasible genomes are priced at infinity instead of being
  split in place (tests the in-situ tuning of Sec 4.4.4),
* no-warm-start — cold population versus greedy/DP seeding (tests the
  "flexible initialization" benefit).

Shape expectations: each ablation is no better than the full configuration
(small budgets add noise, so the assertions allow a tolerance band).
"""

import pytest

from repro.config import MemoryConfig
from repro.cost.evaluator import Evaluator
from repro.cost.objective import Metric
from repro.ga.engine import GAConfig, GeneticEngine
from repro.ga.genome import Genome
from repro.ga.problem import OptimizationProblem
from repro.graphs.zoo import get_model
from repro.partition.dp import dp_partition
from repro.partition.greedy import greedy_partition
from repro.experiments.common import paper_accelerator
from repro.units import kb

BUDGET = GAConfig(population_size=24, generations=10, seed=0)


@pytest.fixture(scope="module")
def problem():
    graph = get_model("googlenet")
    accel = paper_accelerator()
    evaluator = Evaluator(graph, accel)
    return OptimizationProblem(
        evaluator=evaluator, metric=Metric.EMA, fixed_memory=accel.memory
    )


def test_ablation_crossover(once, problem):
    """Crossover on vs off at the same budget."""

    def run_pair():
        full = GeneticEngine(problem, BUDGET).run()
        no_crossover = GeneticEngine(
            problem,
            GAConfig(
                population_size=BUDGET.population_size,
                generations=BUDGET.generations,
                crossover_rate=0.0,
                seed=BUDGET.seed,
            ),
        ).run()
        return full.best_cost, no_crossover.best_cost

    full_cost, ablated_cost = once(run_pair)
    assert full_cost <= ablated_cost * 1.10, "crossover should not hurt"
    print(f"\ncrossover ablation: full={full_cost:.3e} mutation-only={ablated_cost:.3e}")


def test_ablation_in_situ_repair(once, problem):
    """In-situ capacity splitting vs pricing infeasible genomes at inf."""

    class NoRepairProblem(OptimizationProblem):
        def repair(self, genome: Genome) -> Genome:
            return genome

    no_repair = NoRepairProblem(
        evaluator=problem.evaluator,
        metric=problem.metric,
        fixed_memory=problem.fixed_memory,
    )

    def run_pair():
        full = GeneticEngine(problem, BUDGET).run()
        ablated = GeneticEngine(no_repair, BUDGET).run()
        return full.best_cost, ablated.best_cost

    full_cost, ablated_cost = once(run_pair)
    assert full_cost <= ablated_cost * 1.05, "repair should not hurt"
    print(f"\nrepair ablation: full={full_cost:.3e} no-repair={ablated_cost:.3e}")


def test_ablation_warm_start(once, problem):
    """Greedy/DP-seeded population vs a cold start."""
    graph = problem.graph

    def cost_fn(members):
        cost = problem.evaluator.subgraph_cost(members)
        return cost.ema_bytes if cost.feasible else float("inf")

    def run_pair():
        seeds = [
            Genome(greedy_partition(graph, cost_fn), problem.fixed_memory),
            Genome(dp_partition(graph, cost_fn), problem.fixed_memory),
        ]
        warm = GeneticEngine(problem, BUDGET).run(seeds=seeds)
        cold = GeneticEngine(problem, BUDGET).run()
        return warm.best_cost, cold.best_cost

    warm_cost, cold_cost = once(run_pair)
    assert warm_cost <= cold_cost * 1.02, "warm start should not hurt"
    print(f"\nwarm-start ablation: warm={warm_cost:.3e} cold={cold_cost:.3e}")
