"""Figure 12: convergence curves and sample efficiency.

Paper claim: Cocco converges with fewer samples than the two-step and SA
baselines — Fig 12(d) reports the samples needed to reach within 5% of
Cocco's final cost.
"""

from repro.experiments import fig12_convergence
from repro.experiments.common import QUICK_SCALE

BENCH_MODELS = ("googlenet",)


def test_fig12_convergence(once):
    result = once(fig12_convergence.run, models=BENCH_MODELS, scale=QUICK_SCALE)
    rows = {row[1]: row for row in result.rows}
    cocco_final = float(rows["Cocco"][2])
    # Shape: Cocco reaches its own 1.05x threshold (by definition) and its
    # final cost is not beaten by any baseline by more than noise.
    assert rows["Cocco"][4] != "never"
    for method, row in rows.items():
        assert float(row[2]) >= cocco_final * 0.9, (
            f"{method} unexpectedly far below Cocco"
        )
    histories = result.extra["googlenet"]
    assert all(len(h) >= 1 for h in histories.values())
    print()
    print(result.to_text())
