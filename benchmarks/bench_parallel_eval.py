"""Serial vs process-pool population evaluation on a real GA run.

Runs the same partition-only Cocco GA (fixed seed) once with the
:class:`~repro.parallel.backend.SerialBackend` and once with a
:class:`~repro.parallel.backend.ProcessPoolBackend`, asserts the results
are bit-identical (evaluation is pure per genome — only the fan-out
changes), and reports the wall-clock speedup.

As a script::

    PYTHONPATH=src python benchmarks/bench_parallel_eval.py \
        --model resnet50 --population 50 --generations 5 --workers 4

Under pytest-benchmark (the identity assertion always runs; the >= 2x
speedup assertion is enforced only on machines with >= 4 CPUs, since a
process pool cannot beat serial execution without cores to run on)::

    python -m pytest benchmarks/bench_parallel_eval.py
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import pytest

from repro.cost.evaluator import Evaluator
from repro.cost.objective import Metric
from repro.experiments.common import paper_accelerator, paper_memory
from repro.ga.engine import GAConfig, GAResult, GeneticEngine
from repro.ga.problem import OptimizationProblem
from repro.graphs.zoo import get_model

#: Minimum speedup the ISSUE/acceptance criteria demand at 4 workers.
TARGET_SPEEDUP = 2.0


def _run_ga(
    model: str, population: int, generations: int, seed: int, workers: int
) -> tuple[GAResult, float]:
    """One GA run with a fresh evaluator; returns (result, seconds)."""
    graph = get_model(model)
    problem = OptimizationProblem(
        evaluator=Evaluator(graph, paper_accelerator()),
        metric=Metric.EMA,
        alpha=None,
        fixed_memory=paper_memory(),
    )
    config = GAConfig(
        population_size=population,
        generations=generations,
        seed=seed,
        workers=workers,
    )
    started = time.perf_counter()
    result = GeneticEngine(problem, config).run()
    return result, time.perf_counter() - started


def measure(
    model: str = "resnet50",
    population: int = 50,
    generations: int = 5,
    workers: int = 4,
    seed: int = 0,
) -> dict:
    """Serial vs parallel comparison; raises if the results diverge."""
    serial, t_serial = _run_ga(model, population, generations, seed, workers=1)
    parallel, t_parallel = _run_ga(
        model, population, generations, seed, workers=workers
    )
    if (
        parallel.best_cost != serial.best_cost
        or parallel.best_genome.key() != serial.best_genome.key()
        or parallel.history != serial.history
        or parallel.num_evaluations != serial.num_evaluations
    ):
        raise AssertionError(
            "parallel GA diverged from serial: "
            f"{parallel.best_cost} vs {serial.best_cost}"
        )
    return {
        "model": model,
        "population": population,
        "generations": generations,
        "workers": workers,
        "evaluations": serial.num_evaluations,
        "best_cost": serial.best_cost,
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "speedup": t_serial / t_parallel if t_parallel > 0 else float("inf"),
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_parallel_eval_identical_and_fast(once):
    """The acceptance benchmark: identical results, speedup on multicore."""
    report = once(
        measure, model="resnet50", population=50, generations=5, workers=4
    )
    sys.stderr.write(
        f"\n[bench_parallel_eval] {report['model']}: "
        f"{report['evaluations']} evaluations, "
        f"serial {report['serial_seconds']:.2f}s, "
        f"4 workers {report['parallel_seconds']:.2f}s, "
        f"speedup {report['speedup']:.2f}x "
        f"(on {os.cpu_count()} CPUs)\n"
    )
    if (os.cpu_count() or 1) >= 4:
        assert report["speedup"] >= TARGET_SPEEDUP, (
            f"expected >= {TARGET_SPEEDUP}x speedup at 4 workers on "
            f"{os.cpu_count()} CPUs, measured {report['speedup']:.2f}x"
        )
    else:
        pytest.skip(
            f"only {os.cpu_count()} CPU(s): results verified identical, "
            f"speedup assertion needs >= 4 cores "
            f"(measured {report['speedup']:.2f}x)"
        )


def test_parallel_eval_small_batch_identical(once):
    """Cheap variant exercised even on tiny machines."""
    report = once(
        measure, model="googlenet", population=12, generations=2, workers=2
    )
    assert report["evaluations"] > 0


# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet50")
    parser.add_argument("--population", type=int, default=50)
    parser.add_argument("--generations", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    report = measure(
        model=args.model,
        population=args.population,
        generations=args.generations,
        workers=args.workers,
        seed=args.seed,
    )
    print(
        f"{report['model']}: population={report['population']} "
        f"generations={report['generations']} "
        f"({report['evaluations']} evaluations)"
    )
    print(f"  serial          : {report['serial_seconds']:.2f}s")
    print(
        f"  {report['workers']} workers       : "
        f"{report['parallel_seconds']:.2f}s"
    )
    print(
        f"  speedup         : {report['speedup']:.2f}x "
        f"(host has {os.cpu_count()} CPUs)"
    )
    print("  results identical: yes (best cost, genome, history)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
