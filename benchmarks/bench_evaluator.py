"""Evaluation-pipeline benchmark: profile / price / population / generations.

Times every stage of the genome-evaluation pipeline — memory-independent
subgraph profiling, memory-dependent pricing, fresh-population evaluation
(repair + objective), cross-genome batched population pricing
(``summarize_population``: shape-class tensor batching + GOMA-style
closed-form direct solves, vs the per-genome incremental loop), and a
short GA generation loop — once through the fast pipeline
(:class:`repro.cost.evaluator.Evaluator`, single-pass
tiling + vectorized kernels + incremental summaries) and once through the
retained pre-optimization reference
(:class:`repro.cost.reference.ReferenceEvaluator`). Results are asserted
bit-identical at every stage; only the wall-clock may differ.

Writes a machine-readable ``BENCH_evaluator.json`` (ops/sec per stage plus
fast-vs-reference speedups) so the performance trajectory is tracked PR
over PR, and can compare itself against a committed baseline with
``--check-against`` — the regression rule uses the fast/reference
*speedup ratio*, which is largely machine-independent, and fails on a
>2x regression.

As a script::

    PYTHONPATH=src python benchmarks/bench_evaluator.py \
        --model resnet50 --population 60 --output BENCH_evaluator.json

    # CI quick mode + regression gate:
    PYTHONPATH=src python benchmarks/bench_evaluator.py --quick \
        --output BENCH_evaluator.json \
        --check-against benchmarks/baselines/BENCH_evaluator_baseline.json

Under pytest (identity always asserted; the >= 3x population-evaluation
speedup is enforced in the full configuration)::

    python -m pytest benchmarks/bench_evaluator.py
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

import pytest

from repro.cost.evaluator import Evaluator
from repro.cost.objective import Metric
from repro.cost.reference import ReferenceEvaluator
from repro.config import MemoryConfig
from repro.experiments.common import paper_accelerator, paper_memory
from repro.ga.engine import GAConfig, GeneticEngine
from repro.ga.genome import Genome
from repro.ga.problem import OptimizationProblem
from repro.graphs.zoo import get_model
from repro.partition.random_init import random_partition
from repro.units import kb, mb

#: The acceptance bar for the population-evaluation microbenchmark.
TARGET_SPEEDUP = 3.0
#: The acceptance bar for batched population pricing vs the incremental
#: (per-genome) path on a cold evaluator.
TARGET_BATCH_SPEEDUP = 2.0
#: A committed-baseline speedup may degrade by at most this factor.
REGRESSION_TOLERANCE = 2.0
#: Telemetry (sink active, events streaming to disk) may slow the
#: generation loop by at most this fraction.
TELEMETRY_OVERHEAD_CEILING = 0.05

_PRICE_MEMORIES = (
    MemoryConfig.separate(mb(1), kb(1152)),
    MemoryConfig.separate(kb(256), kb(256)),
    MemoryConfig.shared(kb(1152)),
    MemoryConfig.shared(kb(256)),
)


def _sample_subgraphs(graph, count: int, seed: int) -> list[frozenset[str]]:
    rng = random.Random(seed)
    sets: list[frozenset[str]] = []
    seen: set[frozenset[str]] = set()
    while len(sets) < count:
        for members in random_partition(graph, rng).subgraph_sets:
            if members not in seen:
                seen.add(members)
                sets.append(members)
    return sets[:count]


def _best_of(reps: int, fn) -> float:
    return min(fn() for _ in range(max(1, reps)))


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------
def stage_profile(graph, subgraphs, accel, reps: int) -> dict:
    """Memory-independent profiling: single-pass vs per-candidate walks."""
    from repro.cost.ema import profile_subgraph, profile_subgraph_reference

    fast = [profile_subgraph(graph, m, accel.bytes_per_element) for m in subgraphs]
    ref = [
        profile_subgraph_reference(graph, m, accel.bytes_per_element)
        for m in subgraphs
    ]
    if fast != ref:
        raise AssertionError("fast profile diverged from reference profile")

    def run_fast() -> float:
        t0 = time.perf_counter()
        for m in subgraphs:
            profile_subgraph(graph, m, accel.bytes_per_element)
        return time.perf_counter() - t0

    def run_ref() -> float:
        t0 = time.perf_counter()
        for m in subgraphs:
            profile_subgraph_reference(graph, m, accel.bytes_per_element)
        return time.perf_counter() - t0

    t_fast, t_ref = _best_of(reps, run_fast), _best_of(reps, run_ref)
    n = len(subgraphs)
    return {
        "ops": n,
        "fast_ops_per_sec": n / t_fast,
        "reference_ops_per_sec": n / t_ref,
        "speedup": t_ref / t_fast,
    }


def stage_price(graph, subgraphs, accel, reps: int) -> dict:
    """Memory-dependent pricing on pre-warmed profiles."""

    def build(cls):
        ev = cls(graph, accel)
        for m in subgraphs:
            ev.profile(m)
        return ev

    fast_ev, ref_ev = build(Evaluator), build(ReferenceEvaluator)
    fast_costs = [
        fast_ev.subgraph_cost(m, mem) for mem in _PRICE_MEMORIES for m in subgraphs
    ]
    ref_costs = [
        ref_ev.subgraph_cost(m, mem) for mem in _PRICE_MEMORIES for m in subgraphs
    ]
    if fast_costs != ref_costs:
        raise AssertionError("fast pricing diverged from reference pricing")

    def timed(ev_cls) -> float:
        ev = build(ev_cls)
        t0 = time.perf_counter()
        for mem in _PRICE_MEMORIES:
            for m in subgraphs:
                ev.subgraph_cost(m, mem)
        return time.perf_counter() - t0

    t_fast = _best_of(reps, lambda: timed(Evaluator))
    t_ref = _best_of(reps, lambda: timed(ReferenceEvaluator))
    n = len(subgraphs) * len(_PRICE_MEMORIES)
    return {
        "ops": n,
        "fast_ops_per_sec": n / t_fast,
        "reference_ops_per_sec": n / t_ref,
        "speedup": t_ref / t_fast,
    }


def stage_population(graph, accel, population: int, seed: int, reps: int) -> dict:
    """The acceptance microbenchmark: evaluate one fresh population.

    Repair + objective for ``population`` random genomes on a cold
    evaluator, fast incremental pipeline vs the pre-optimization
    reference. Asserts identical repairs, identical objective values,
    and bit-identical ``PartitionCost`` for every evaluated genome.
    """
    memory = paper_memory()
    rng = random.Random(seed)
    raw = [
        Genome(partition=random_partition(graph, rng), memory=memory)
        for _ in range(population)
    ]

    def build(cls, incremental):
        return OptimizationProblem(
            evaluator=cls(graph, accel),
            metric=Metric.EMA,
            alpha=None,
            fixed_memory=memory,
            incremental=incremental,
        )

    def evaluate(problem):
        repaired = [problem.repair(g) for g in raw]
        return repaired, [problem.cost(g) for g in repaired]

    fast_problem = build(Evaluator, True)
    ref_problem = build(ReferenceEvaluator, False)
    fast_genomes, fast_costs = evaluate(fast_problem)
    ref_genomes, ref_costs = evaluate(ref_problem)
    if [g.key() for g in fast_genomes] != [g.key() for g in ref_genomes]:
        raise AssertionError("incremental repair diverged from reference")
    if fast_costs != ref_costs:
        raise AssertionError("incremental objectives diverged from reference")
    for genome in fast_genomes:
        fast_cost = fast_problem.evaluator.evaluate(
            genome.partition.subgraph_sets, memory
        )
        ref_cost = ref_problem.evaluator.evaluate(
            genome.partition.subgraph_sets, memory
        )
        if fast_cost != ref_cost:
            raise AssertionError("PartitionCost not bit-identical")

    def timed(cls, incremental) -> float:
        problem = build(cls, incremental)
        t0 = time.perf_counter()
        evaluate(problem)
        return time.perf_counter() - t0

    t_fast = _best_of(reps, lambda: timed(Evaluator, True))
    t_ref = _best_of(reps, lambda: timed(ReferenceEvaluator, False))
    return {
        "ops": population,
        "fast_ops_per_sec": population / t_fast,
        "reference_ops_per_sec": population / t_ref,
        "speedup": t_ref / t_fast,
    }


def stage_population_batch(
    graph, accel, population: int, seed: int, reps: int
) -> dict:
    """Tensorized population pricing vs per-genome incremental pricing.

    Summarizes one fresh population of random partitions on a *cold*
    evaluator three ways — ``summarize_population`` (shape-class batched
    tensor pricing + GOMA-style direct solves), a per-genome
    ``summarize`` loop (the incremental path), and the pre-optimization
    reference — asserting all three bit-identical. ``speedup`` is
    batch-vs-incremental (both share the PR 2 single-subgraph kernels,
    so the ratio isolates what cross-genome batching adds);
    ``speedup_vs_reference`` tracks the full distance to the naive
    pipeline.
    """
    memory = paper_memory()
    rng = random.Random(seed)
    pops = [
        random_partition(graph, rng).subgraph_sets for _ in range(population)
    ]

    batch_ev = Evaluator(graph, accel)
    batched = batch_ev.summarize_population(pops, memory)
    incremental = [Evaluator(graph, accel).summarize(p, memory) for p in pops]
    reference = [
        ReferenceEvaluator(graph, accel).summarize(p, memory) for p in pops
    ]
    if batched != incremental or batched != reference:
        raise AssertionError("batched population pricing diverged")
    if batch_ev.num_batch_priced == 0:
        raise AssertionError("batch path did not run")

    def timed_batch() -> float:
        ev = Evaluator(graph, accel)
        t0 = time.perf_counter()
        ev.summarize_population(pops, memory)
        return time.perf_counter() - t0

    def timed_incremental() -> float:
        ev = Evaluator(graph, accel)
        t0 = time.perf_counter()
        for p in pops:
            ev.summarize(p, memory)
        return time.perf_counter() - t0

    def timed_reference() -> float:
        ev = ReferenceEvaluator(graph, accel)
        t0 = time.perf_counter()
        for p in pops:
            ev.summarize(p, memory)
        return time.perf_counter() - t0

    t_batch = _best_of(reps, timed_batch)
    t_incr = _best_of(reps, timed_incremental)
    t_ref = _best_of(reps, timed_reference)
    return {
        "ops": population,
        "fast_ops_per_sec": population / t_batch,
        "incremental_ops_per_sec": population / t_incr,
        "reference_ops_per_sec": population / t_ref,
        "speedup": t_incr / t_batch,
        "speedup_vs_reference": t_ref / t_batch,
        "direct_solve_share": (
            batch_ev.num_batch_direct / batch_ev.num_batch_priced
        ),
    }


def stage_generations(
    graph, accel, population: int, generations: int, seed: int, reps: int
) -> dict:
    """Short GA run: warm-cache behaviour across generations."""

    def run(cls, incremental):
        problem = OptimizationProblem(
            evaluator=cls(graph, accel),
            metric=Metric.EMA,
            alpha=None,
            fixed_memory=paper_memory(),
        )
        config = GAConfig(
            population_size=population,
            generations=generations,
            seed=seed,
            incremental=incremental,
        )
        t0 = time.perf_counter()
        result = GeneticEngine(problem, config).run()
        return result, time.perf_counter() - t0

    fast_result, _ = run(Evaluator, True)
    ref_result, _ = run(ReferenceEvaluator, False)
    if (
        fast_result.best_cost != ref_result.best_cost
        or fast_result.history != ref_result.history
        or fast_result.best_genome.key() != ref_result.best_genome.key()
        or fast_result.num_evaluations != ref_result.num_evaluations
    ):
        raise AssertionError("incremental GA diverged from reference GA")
    evaluations = fast_result.num_evaluations

    t_fast = _best_of(reps, lambda: run(Evaluator, True)[1])
    t_ref = _best_of(reps, lambda: run(ReferenceEvaluator, False)[1])
    return {
        "ops": evaluations,
        "fast_ops_per_sec": evaluations / t_fast,
        "reference_ops_per_sec": evaluations / t_ref,
        "speedup": t_ref / t_fast,
    }


def stage_telemetry(
    graph, accel, population: int, generations: int, seed: int, reps: int
) -> dict:
    """Telemetry overhead: the generation loop with the sink on vs off.

    Runs the same short GA twice — once with an active
    :class:`repro.obs.TelemetrySink` streaming events to a real file,
    once with telemetry disabled (no sink, the production default for
    library use) — asserting bit-identical search results and measuring
    the enabled path's wall-clock overhead. ``overhead`` is the
    fractional slowdown (0.02 = 2%); the observability acceptance bar
    is < 5%.
    """
    import os
    import tempfile

    from repro.obs import TelemetrySink, activate

    def run(sink):
        problem = OptimizationProblem(
            evaluator=Evaluator(graph, accel),
            metric=Metric.EMA,
            alpha=None,
            fixed_memory=paper_memory(),
        )
        config = GAConfig(
            population_size=population, generations=generations, seed=seed
        )
        t0 = time.perf_counter()
        with activate(sink):
            result = GeneticEngine(problem, config).run()
        return result, time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "telemetry.jsonl")

        def timed(enabled: bool) -> float:
            sink = TelemetrySink(path) if enabled else None
            try:
                return run(sink)[1]
            finally:
                if sink is not None:
                    sink.close()

        check_sink = TelemetrySink(path)
        on_result, _ = run(check_sink)
        check_sink.close()
        off_result, _ = run(None)
        if (
            on_result.best_cost != off_result.best_cost
            or on_result.history != off_result.history
            or on_result.num_evaluations != off_result.num_evaluations
            or on_result.best_genome.key() != off_result.best_genome.key()
        ):
            raise AssertionError("telemetry bent the search trajectory")
        if check_sink.events_written == 0:
            raise AssertionError("telemetry stage emitted no events")

        t_on = _best_of(reps, lambda: timed(True))
        t_off = _best_of(reps, lambda: timed(False))

    evaluations = on_result.num_evaluations
    return {
        "ops": evaluations,
        "fast_ops_per_sec": evaluations / t_off,
        "enabled_ops_per_sec": evaluations / t_on,
        "events_per_run": check_sink.events_written,
        "overhead": t_on / t_off - 1.0,
        # Uniform shape with the other stages (and harmless if this
        # stage ever lands in a committed baseline): disabled vs
        # enabled, ~1.0 when telemetry is free.
        "speedup": t_on / t_off,
        "reference_ops_per_sec": evaluations / t_on,
    }


# ---------------------------------------------------------------------------
def measure(
    model: str = "resnet50",
    population: int = 60,
    generations: int = 4,
    num_subgraphs: int = 120,
    seed: int = 0,
    reps: int = 3,
) -> dict:
    """Run all stages; raises on any fast/reference divergence."""
    graph = get_model(model)
    accel = paper_accelerator()
    subgraphs = _sample_subgraphs(graph, num_subgraphs, seed)
    stages = {
        "profile": stage_profile(graph, subgraphs, accel, reps),
        "price": stage_price(graph, subgraphs, accel, reps),
        "population": stage_population(graph, accel, population, seed, reps),
        "population_batch": stage_population_batch(
            graph, accel, population, seed, reps
        ),
        "generations": stage_generations(
            graph, accel, population, generations, seed, reps
        ),
        "telemetry": stage_telemetry(
            graph, accel, population, generations, seed, reps
        ),
    }
    return {
        "meta": {
            "model": model,
            "population": population,
            "generations": generations,
            "num_subgraphs": num_subgraphs,
            "seed": seed,
            "reps": reps,
        },
        "stages": stages,
    }


def check_regression(report: dict, baseline: dict) -> list[str]:
    """Speedup-ratio regression check against a committed baseline.

    Absolute ops/sec depends on the host, but the fast/reference speedup
    of each stage is a property of the code; a stage whose speedup fell
    below ``baseline / REGRESSION_TOLERANCE`` indicates the fast path
    lost its edge.
    """
    failures = []
    for name, stage in baseline.get("stages", {}).items():
        current = report["stages"].get(name)
        if current is None:
            failures.append(f"stage {name!r} missing from current report")
            continue
        floor = stage["speedup"] / REGRESSION_TOLERANCE
        if current["speedup"] < floor:
            failures.append(
                f"stage {name!r}: speedup {current['speedup']:.2f}x fell "
                f"below {floor:.2f}x (baseline {stage['speedup']:.2f}x / "
                f"tolerance {REGRESSION_TOLERANCE}x)"
            )
    return failures


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------
def test_population_eval_speedup(once):
    """Acceptance: >= 3x on the population-evaluation microbenchmark."""
    report = once(measure, model="resnet50", population=60, generations=3,
                  num_subgraphs=80)
    stage = report["stages"]["population"]
    sys.stderr.write(
        f"\n[bench_evaluator] population: fast "
        f"{stage['fast_ops_per_sec']:.0f} genomes/s vs reference "
        f"{stage['reference_ops_per_sec']:.0f} genomes/s "
        f"({stage['speedup']:.2f}x); generations "
        f"{report['stages']['generations']['speedup']:.2f}x; profile "
        f"{report['stages']['profile']['speedup']:.2f}x\n"
    )
    assert stage["speedup"] >= TARGET_SPEEDUP, (
        f"expected >= {TARGET_SPEEDUP}x population-evaluation speedup, "
        f"measured {stage['speedup']:.2f}x"
    )
    batch = report["stages"]["population_batch"]
    sys.stderr.write(
        f"[bench_evaluator] population_batch: {batch['speedup']:.2f}x vs "
        f"incremental, {batch['speedup_vs_reference']:.2f}x vs reference, "
        f"direct-solve share {batch['direct_solve_share']:.0%}\n"
    )
    assert batch["speedup"] >= TARGET_BATCH_SPEEDUP, (
        f"expected >= {TARGET_BATCH_SPEEDUP}x batched population pricing "
        f"over the incremental path, measured {batch['speedup']:.2f}x"
    )
    telemetry = report["stages"]["telemetry"]
    sys.stderr.write(
        f"[bench_evaluator] telemetry: {telemetry['overhead']:+.1%} "
        f"overhead, {telemetry['events_per_run']} events/run\n"
    )
    assert telemetry["overhead"] < TELEMETRY_OVERHEAD_CEILING, (
        f"telemetry overhead {telemetry['overhead']:.1%} exceeds the "
        f"{TELEMETRY_OVERHEAD_CEILING:.0%} ceiling"
    )


def test_quick_identity(once):
    """Cheap variant: every stage's identity assertions on a small model."""
    report = once(measure, model="googlenet", population=16, generations=2,
                  num_subgraphs=30, reps=1)
    assert set(report["stages"]) == {
        "profile", "price", "population", "population_batch", "generations",
        "telemetry",
    }
    for stage in report["stages"].values():
        assert stage["speedup"] > 0


# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet50")
    parser.add_argument("--population", type=int, default=60)
    parser.add_argument("--generations", type=int, default=4)
    parser.add_argument("--num-subgraphs", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration (googlenet, pop 16)")
    parser.add_argument("--output", default="BENCH_evaluator.json",
                        help="where to write the machine-readable report")
    parser.add_argument("--check-against", default=None,
                        help="baseline JSON; exit 1 on a >2x speedup regression")
    args = parser.parse_args(argv)

    if args.quick:
        report = measure(model="googlenet", population=16, generations=2,
                         num_subgraphs=30, seed=args.seed, reps=2)
    else:
        report = measure(
            model=args.model,
            population=args.population,
            generations=args.generations,
            num_subgraphs=args.num_subgraphs,
            seed=args.seed,
            reps=args.reps,
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    for name, stage in report["stages"].items():
        print(
            f"  {name:<12}: fast {stage['fast_ops_per_sec']:10.1f} ops/s  "
            f"reference {stage['reference_ops_per_sec']:10.1f} ops/s  "
            f"speedup {stage['speedup']:5.2f}x"
        )
    print("  results bit-identical at every stage (asserted)")

    if args.check_against:
        with open(args.check_against) as fh:
            baseline = json.load(fh)
        failures = check_regression(report, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"  no regression vs {args.check_against}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
