"""Table 1: co-exploration with separate buffers (alpha=0.002, M=energy).

Paper claims: the co-optimizing methods (Cocco, SA) generally beat the
fixed-hardware and two-step schemes; Cocco attains the lowest cost.
"""

from repro.experiments import table1_separate
from repro.experiments.common import QUICK_SCALE

BENCH_MODELS = ("resnet50", "googlenet")


def _cost(cell: str) -> float:
    return float(cell.replace("E", "e"))


def test_table1_separate(once):
    result = once(table1_separate.run, models=BENCH_MODELS, scale=QUICK_SCALE)
    by_model: dict[str, dict[str, float]] = {}
    for row in result.rows:
        by_model.setdefault(row[0], {})[row[1]] = _cost(row[4])
    for model, methods in by_model.items():
        cocco = methods["Cocco"]
        fixed_best = min(methods["Buf(S)"], methods["Buf(M)"], methods["Buf(L)"])
        # Shape: co-optimization is competitive with the best fixed design
        # (within noise of the small search budget) and beats the worst.
        assert cocco <= fixed_best * 1.10, f"{model}: Cocco lost to fixed HW"
        assert cocco <= max(methods.values()) , f"{model}: Cocco is the worst"
    print()
    print(result.to_text())
