"""Fig 2: the industrial-NPU survey and its three observations.

Shape claims (Sec 2.1): SRAM spans 4-79% of die area; the marginal
performance per MB declines with capacity; inference parts saturate at a
finite capacity (Hanguang, the DDR-less design, anchors the tail).
"""

from repro.experiments import fig2_survey


def test_fig2_survey(once):
    result = once(fig2_survey.run)
    areas = [row[4] for row in result.rows]
    assert min(areas) < 5 and max(areas) > 75

    density = [(row[3], row[2] / row[3]) for row in result.rows]
    small = [d for mem, d in density if mem <= 64]
    large = [d for mem, d in density if mem > 200]
    assert sum(small) / len(small) > sum(large) / len(large)

    print()
    print(result.to_text())
