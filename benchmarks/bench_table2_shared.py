"""Table 2: co-exploration with a shared buffer (alpha=0.002, M=energy).

Paper claims: the shared design mostly reaches lower cost than the
separate design, and Cocco remains the best method.
"""

from repro.experiments import table1_separate, table2_shared
from repro.experiments.common import QUICK_SCALE
from repro.search_space import CapacitySpace

BENCH_MODELS = ("googlenet",)


def _cost(cell: str) -> float:
    return float(cell.replace("E", "e"))


def test_table2_shared(once):
    result = once(table2_shared.run, models=BENCH_MODELS, scale=QUICK_SCALE)
    methods = {row[1]: _cost(row[4]) for row in result.rows}
    cocco = methods["Cocco"]
    assert cocco <= max(methods.values())
    # Shared-vs-separate comparison on the same model and budget.
    separate_rows = table1_separate.run_model(
        "googlenet", CapacitySpace.paper_separate(), QUICK_SCALE, seed=0
    )
    separate_cocco = _cost(separate_rows[-1][4])
    assert cocco <= separate_cocco * 1.15, "shared buffer should be competitive"
    print()
    print(result.to_text())
    print(f"  separate-buffer Cocco cost for googlenet: {separate_cocco:.3e}")
