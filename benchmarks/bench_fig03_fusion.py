"""Figure 3: layer-fusion EMA and bandwidth study.

Paper claim: fusing layers into subgraphs (L=3) cuts EMA by 42-75% and
average bandwidth by 27-68% versus layer-by-layer execution, with only
marginal additional gains at L=5.
"""

from repro.experiments import fig3_fusion


def test_fig3_fusion(once):
    result = once(fig3_fusion.run)
    rows = {(r[0], r[1]): r for r in result.rows}
    for model in ("resnet50", "googlenet", "randwire_a", "nasnet"):
        ema_l1 = rows[(model, 1)][3]
        ema_l3 = rows[(model, 3)][3]
        ema_l5 = rows[(model, 5)][3]
        bw_l1 = rows[(model, 1)][5]
        bw_l3 = rows[(model, 3)][5]
        # Shape: EMA and avg BW fall monotonically with fusion level.
        assert ema_l3 < ema_l1, f"{model}: EMA should drop at L=3"
        assert ema_l5 <= ema_l3, f"{model}: EMA should not rise at L=5"
        assert bw_l3 < bw_l1, f"{model}: avg BW should drop at L=3"
        # Band: L=3 saves a substantial fraction, as in the paper.
        assert (ema_l1 - ema_l3) / ema_l1 > 0.15
    print()
    print(result.to_text())
