"""Stability of Cocco versus SA across seeds (Sec 4.2.4's claim).

Shape claims: on the majority of models, Cocco's cost spread across seeds
is no larger than SA's, and Cocco's worst seed stays within a modest band
of its best — the "avoid local optima / population diversity" benefits of
Sec 4.3 made measurable.
"""

from repro.experiments import stability
from repro.experiments.common import QUICK_SCALE


def test_stability_cocco_vs_sa(once):
    result = once(
        stability.run,
        models=("googlenet", "randwire_a"),
        scale=QUICK_SCALE,
        num_seeds=4,
    )
    print()
    print(result.to_text())

    wins = 0
    models = set()
    spread = {}
    for row in result.rows:
        model, method = row[0], row[1]
        models.add(model)
        spread[(model, method)] = float(row[3].replace("E", "e"))
    for model in models:
        if spread[(model, "Cocco")] <= spread[(model, "SA")] * 1.25:
            wins += 1
    # Cocco is at least as stable as SA on the majority of models.
    assert wins >= (len(models) + 1) // 2, (
        f"Cocco less stable than SA on most models: {spread}"
    )
