"""Figure 11: graph-partition quality, EMA-opt, normalized to Halide.

Paper claims: Cocco is never worse than the greedy or DP baselines; it
matches the enumeration optimum on the small/regular models; the exact
enumeration cannot complete on the large irregular models.
"""

from repro.experiments import fig11_partition
from repro.experiments.common import QUICK_SCALE

# The large irregular models run the greedy/enumeration baselines for
# many minutes (the paper's scalability point); the bench covers the
# plain and multi-branch structures where every method completes, and the
# full eight-model comparison is `python -m repro.experiments.runner
# fig11`.
BENCH_MODELS = ("vgg16", "resnet50")


def test_fig11_partition(once):
    result = once(fig11_partition.run, models=BENCH_MODELS, scale=QUICK_SCALE)
    by_model: dict[str, dict[str, tuple]] = {}
    for row in result.rows:
        by_model.setdefault(row[0], {})[row[1]] = row
    for model, methods in by_model.items():
        greedy_ema = methods["Halide(Greedy)"][2]
        dp_ema = methods["Irregular-NN(DP)"][2]
        cocco_ema = methods["Cocco"][2]
        # Shape: warm-started Cocco never loses to its seeds.
        assert cocco_ema <= greedy_ema, f"{model}: Cocco worse than greedy"
        assert cocco_ema <= dp_ema, f"{model}: Cocco worse than DP"
        enum_row = methods["Enumeration"]
        if enum_row[2] != "n/a":
            # Where the exact method completes, Cocco sits near its optimum
            # (within the quick search budget's noise).
            assert cocco_ema <= enum_row[2] * 1.10, (
                f"{model}: Cocco far from the enumeration optimum"
            )
    print()
    print(result.to_text())
