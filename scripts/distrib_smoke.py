#!/usr/bin/env python
"""Distrib smoke: workers SIGKILLed mid-cell, identical merged reports.

The CI acceptance check for the distributed campaign layer, in two
phases, runnable against either registry transport (``--transport``):

* ``fs`` — the classic shared-directory registry;
* ``objectstore`` — an S3-compatible conditional-PUT object store: the
  smoke process hosts the deterministic in-process fake server
  (:mod:`repro.distrib.objectstore`) and every worker/coordinator
  subprocess reaches it over a real ``s3://host:port/bucket`` URI.

Phase 1 (unbudgeted, cocco+sa matrix):

1. run a small matrix to completion single-process in a *clean* local
   registry (`repro suite`) — the reference is always FsTransport;
2. start a `repro worker` against a second (selected-transport)
   registry with fault injection targeting the first cell: the worker
   claims the cell's lease, then hard-exits mid-cell exactly like an
   OOM kill — leaving an unreleased lease and no durable result;
3. start two concurrent survivor `repro worker` processes on the same
   registry: between them they must steal the dead worker's expired
   lease (exactly once), re-run/resume its cell, and finish the whole
   campaign;
4. merge the registry (`repro suite --report-only`) and assert the
   merged rows are bit-identical to the clean single-process run's.

Phase 2 (budgeted, islands+two-step matrix): the matrix holds an
island-model cell and a two-step (rs) cell under a sample budget sized
so the budget binds. A lone worker is SIGKILLed *mid-islands-cell*
(after its composite checkpoint is durably streaming, before the cell
can finish). The resume is then driven by the **elastic coordinator**
(`repro suite --distributed --autoscale`): it reclaims the orphaned
lease, spawns workers against the unclaimed-cell queue depth, and an
elastically-spawned worker resumes the checkpoint mid-search and runs
the campaign to its budget. Asserts the elastic resume happened (a
``resumed`` ``lease.claim`` by an ``elastic-w*`` worker plus
``fleet.scale`` spawn events), that the registry charged exactly the
budget, and that the merged report is bit-identical to a clean budgeted
single-process FsTransport run.

Exit code 0 on success; non-zero with a diagnostic otherwise. The
killed-and-reclaimed registries are left in place (object-store
contents are dumped to ``<workdir>/objectstore-dump`` on exit) so CI
can upload them as artifacts.

Usage::

    PYTHONPATH=src python scripts/distrib_smoke.py --workdir distrib-smoke
    PYTHONPATH=src python scripts/distrib_smoke.py --transport objectstore
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runs.transport import RunNode, resolve_transport  # noqa: E402

MATRIX_ARGS = [
    "--networks", "vgg16,googlenet",
    "--schemes", "cocco,sa",
    "--scale", "tiny",
    "--seed", "0",
]

#: The first cell in matrix order — the one the victim worker claims.
FAULT_CELL = "vgg16/separate/energy/b1/cocco"

#: Phase 2: an island-model cell plus a two-step (rs) cell.
BUDGET_MATRIX_ARGS = [
    "--networks", "vgg16",
    "--schemes", "islands,rs",
    "--scale", "tiny",
    "--seed", "0",
]

#: Phase 2 sample budget. At tiny scale the islands cell needs ~96
#: evaluations and the rs cell 64 (160 total), so 130 forces the
#: initial 65/65 split to bind: rs finishes under its cap and refunds,
#: islands exhausts at the grown cap — exercising stop-at-cap, resume,
#: and refund re-granting across worker processes.
BUDGET = 130


class RegistryProbe:
    """Transport-aware read access to a registry (path or s3 URI)."""

    def __init__(self, root: str):
        self.root = str(root)
        self.transport = resolve_transport(self.root)

    def node(self, name: str = "") -> RunNode:
        return RunNode(self.transport, name)

    def read_json(self, name: str, filename: str) -> dict | None:
        text = self.node(name).read_text(filename)
        return None if text is None else json.loads(text)

    def lease_keys(self) -> list[str]:
        return [
            key
            for key in self.transport.list_keys("")
            if key.endswith("/lease.json")
        ]

    def charged_evaluations(self) -> int:
        """Total durably-charged samples: results first, else checkpoints."""
        total = 0
        for name in self.transport.list_runs():
            if self.read_json(name, "config.json") is None:
                continue
            result = self.read_json(name, "result.json")
            if result is not None:
                total += result.get("num_evaluations", 0)
                continue
            checkpoint = self.read_json(name, "checkpoint.json")
            if checkpoint is not None:
                total += checkpoint.get("evaluations", 0)
        return total

    def find_run(self, scheme: str) -> str | None:
        for name in self.transport.list_runs():
            config = self.read_json(name, "config.json")
            if config and config.get("config", {}).get("scheme") == scheme:
                return name
        return None

    def telemetry_records(self, name: str = "") -> list[dict]:
        text = self.node(name).read_text("telemetry.jsonl")
        if text is None:
            return []
        lines = text.splitlines()
        if lines and not text.endswith("\n"):
            lines = lines[:-1]  # a torn final line is the designed loss
        records = []
        for line in lines:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records


#: Local directory anchoring subprocess outputs (report.json) when the
#: registry itself is a remote URI; set by main().
_ANCHOR = Path("distrib-smoke") / "local-anchor"


def transport_flags(root: str) -> list[str]:
    """CLI flags addressing a registry root (path or URI).

    ``--registry`` is required by every subcommand; with a URI registry
    it only anchors local outputs, so it points into the workdir.
    """
    if "://" in root:
        return ["--registry", str(_ANCHOR), "--transport", root]
    return ["--registry", root]


def suite_command(root: str, *extra: str, matrix=None) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli.main", "suite",
        *(matrix or MATRIX_ARGS), *transport_flags(root), *extra,
    ]


def worker_command(
    root: str, worker_id: str, *extra: str, matrix=None
) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli.main", "worker",
        *(matrix or MATRIX_ARGS), *transport_flags(root),
        "--worker-id", worker_id, "--ttl", "3", "--poll", "0.1", *extra,
    ]


def read_rows(path: Path) -> list:
    if not path.exists():
        raise SystemExit(f"FAIL: no merged report at {path}")
    return json.loads(path.read_text())["rows"]


#: Live fake servers, so failures can dump their contents as artifacts.
_SERVERS: list = []


def make_registry_root(workdir: Path, transport: str, name: str) -> str:
    """A fresh registry root on the selected transport."""
    if transport == "fs":
        return str(workdir / name)
    from repro.distrib.objectstore import ObjectStore, serve_in_thread

    server, _thread = serve_in_thread(("127.0.0.1", 0), ObjectStore())
    _SERVERS.append((name, server))
    return server.url(name)


def dump_servers(workdir: Path) -> None:
    """Persist every fake server's objects for CI artifact upload."""
    for name, server in _SERVERS:
        dest = workdir / "objectstore-dump" / name
        for key, _size, _etag in server.store.list(""):
            blob = server.store.get(key)
            if blob is None:
                continue
            target = dest / key
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(blob[0])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="distrib-smoke",
                        help="directory holding registries and reports")
    parser.add_argument("--transport", choices=("fs", "objectstore"),
                        default="fs",
                        help="registry transport for the kill/reclaim/"
                             "resume registries (the clean reference "
                             "is always a local fs registry)")
    args = parser.parse_args()

    global _ANCHOR
    workdir = Path(args.workdir)
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    _ANCHOR = workdir / "local-anchor"
    clean = workdir / "clean-registry"
    shared_root = make_registry_root(workdir, args.transport, "shared")
    shared = RegistryProbe(shared_root)
    env = dict(os.environ)
    print(f"transport axis: {args.transport} (shared registry at "
          f"{shared_root})")

    # 1. clean single-process reference run (always fs)
    subprocess.run(
        suite_command(str(clean), "--workers", "1"), env=env, check=True,
        stdout=subprocess.DEVNULL,
    )
    clean_rows = read_rows(clean / "report.json")
    print(f"clean single-process run: {len(clean_rows)} rows")

    # 2. victim worker: dies mid-cell on the first cell it claims,
    # leaving an unreleased lease behind
    victim_env = dict(env, REPRO_SUITE_FAULT_CELL=FAULT_CELL)
    victim = subprocess.run(
        worker_command(shared_root, "victim"), env=victim_env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    if victim.returncode != 23:
        print(f"FAIL: victim exited {victim.returncode}, expected the "
              "injected hard-kill code 23")
        return 1
    leases = shared.lease_keys()
    if len(leases) != 1:
        print(f"FAIL: expected exactly one orphaned lease, found {leases}")
        return 1
    print("victim killed mid-cell; orphaned lease in place")

    # 3. two concurrent survivors: a real shared-registry fleet. One of
    # them must reclaim the victim's expired lease; both must exit clean.
    survivors = [
        subprocess.Popen(
            worker_command(shared_root, f"survivor-{i}"), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        for i in range(2)
    ]
    reclaimed = 0
    for process in survivors:
        stdout, _ = process.communicate(timeout=600)
        if process.returncode != 0:
            print(f"FAIL: a survivor exited {process.returncode}:\n{stdout}")
            return 1
        summary = stdout.strip().splitlines()[-1]
        print(summary)
        match = re.search(r"reclaimed (\d+) expired lease", summary)
        reclaimed += int(match.group(1)) if match else 0
    if reclaimed != 1:
        print(f"FAIL: expected exactly one lease reclaim across the "
              f"fleet, saw {reclaimed}")
        return 1

    # 4. merged report must be bit-identical to the clean run
    shared_report = workdir / "shared-report.json"
    subprocess.run(
        suite_command(shared_root, "--report-only", "--export",
                      str(shared_report)),
        env=env, check=True, stdout=subprocess.DEVNULL,
    )
    shared_rows = read_rows(shared_report)
    if shared_rows != clean_rows:
        print("FAIL: two-worker kill/reclaim campaign differs from clean run")
        for a, b in zip(clean_rows, shared_rows):
            marker = "  " if a == b else "!="
            print(f"{marker} clean={a}\n{marker} workers={b}")
        return 1
    print(f"OK: kill/reclaim report bit-identical to clean run "
          f"({len(clean_rows)} rows)")

    return budgeted_phase(workdir, env, args.transport)


def budgeted_phase(workdir: Path, env: dict, transport: str) -> int:
    """Phase 2: budgeted islands+rs campaign, SIGKILL + elastic resume."""
    clean = workdir / "budget-clean-registry"
    shared_root = make_registry_root(workdir, transport, "budget-shared")
    shared = RegistryProbe(shared_root)
    budget = ["--budget", str(BUDGET)]

    # 1. clean budgeted single-process reference (always fs). Exhausted
    # (out of budget, checkpoint retained) cells exit non-zero by design.
    reference = subprocess.run(
        suite_command(str(clean), "--workers", "1", *budget,
                      matrix=BUDGET_MATRIX_ARGS),
        env=env, stdout=subprocess.DEVNULL,
    )
    if reference.returncode not in (0, 1):
        print(f"FAIL: clean budgeted suite exited {reference.returncode}")
        return 1
    clean_rows = read_rows(clean / "report.json")
    clean_charge = RegistryProbe(str(clean)).charged_evaluations()
    print(f"clean budgeted run: {len(clean_rows)} rows, "
          f"{clean_charge} samples charged")
    if clean_charge != BUDGET:
        print(f"FAIL: clean run charged {clean_charge}, budget is {BUDGET}")
        return 1

    # 2. victim worker, SIGKILLed mid-islands-cell: wait until the
    # cell's composite checkpoint is durably streaming (search is in
    # progress), then kill -9. The lease stays orphaned.
    victim = subprocess.Popen(
        worker_command(shared_root, "victim", *budget,
                       matrix=BUDGET_MATRIX_ARGS),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 120
    islands_run = None
    while time.time() < deadline:
        islands_run = shared.find_run("islands")
        if islands_run is not None and shared.node(islands_run).exists(
            "checkpoint.json"
        ):
            break
        time.sleep(0.01)
    else:
        victim.kill()
        print("FAIL: islands cell never started streaming checkpoints")
        return 1
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait(timeout=60)
    if shared.node(islands_run).exists("result.json"):
        print("FAIL: kill landed after the islands cell completed — "
              "the mid-cell window was missed")
        return 1
    checkpointed = shared.read_json(islands_run, "checkpoint.json")[
        "evaluations"
    ]
    orphaned = shared.node(islands_run).exists("lease.json")
    print(f"victim SIGKILLed mid-islands-cell at {checkpointed} evaluations; "
          f"orphaned lease: {orphaned}")

    # 2b. observability post-mortem: the dead worker's telemetry stream
    # must have survived the SIGKILL (modulo a torn final line), and the
    # dashboard + metrics exporter must render from the corpse registry.
    code = observability_postmortem(workdir, shared, islands_run, env)
    if code != 0:
        return code

    # 3. elastic resume: the autoscale coordinator reclaims the orphaned
    # lease, spawns workers against the unclaimed-cell queue depth, and
    # an elastically-spawned worker resumes the composite checkpoint
    # mid-search and finishes the campaign at budget.
    coordinator = subprocess.run(
        suite_command(
            shared_root, "--distributed", "--autoscale",
            "--max-workers", "2", "--ttl", "3", "--poll", "0.2",
            "--timeout", "300", "--status-interval", "9999",
            *budget, matrix=BUDGET_MATRIX_ARGS,
        ),
        env=env, capture_output=True, text=True,
    )
    # Exhausted-at-budget campaigns exit 1 by design.
    if coordinator.returncode not in (0, 1):
        print(f"FAIL: elastic coordinator exited {coordinator.returncode}:\n"
              f"{coordinator.stdout}\n{coordinator.stderr}")
        return 1
    print(coordinator.stdout.strip().splitlines()[-1]
          if coordinator.stdout.strip() else "(coordinator: no output)")

    claims = [
        record
        for record in shared.telemetry_records(islands_run)
        if record.get("kind") == "lease.claim"
    ]
    elastic_resumes = [
        record for record in claims
        if record.get("resumed")
        and str(record.get("owner", "")).startswith("elastic-w")
    ]
    if not elastic_resumes:
        print(f"FAIL: no elastically-spawned worker resumed the victim's "
              f"islands checkpoint; claims seen: {claims}")
        return 1
    scale_events = [
        record
        for record in shared.telemetry_records("")
        if record.get("kind") == "fleet.scale"
    ]
    spawned = sum(
        record.get("count", 0)
        for record in scale_events
        if record.get("action") == "spawn"
    )
    if spawned < 1:
        print(f"FAIL: coordinator emitted no fleet.scale spawn events: "
              f"{scale_events}")
        return 1
    print(f"elastic resume confirmed: {elastic_resumes[0]['owner']} resumed "
          f"the islands checkpoint; fleet.scale spawned {spawned} worker(s)")

    # 4. exact charge + bit-identical merged report
    shared_charge = shared.charged_evaluations()
    if shared_charge != BUDGET:
        print(f"FAIL: fleet charged {shared_charge}, budget is {BUDGET}")
        return 1
    shared_report = workdir / "budget-shared-report.json"
    subprocess.run(
        suite_command(shared_root, "--report-only", "--export",
                      str(shared_report), matrix=BUDGET_MATRIX_ARGS),
        env=env, check=True, stdout=subprocess.DEVNULL,
    )
    shared_rows = read_rows(shared_report)
    if shared_rows != clean_rows:
        print("FAIL: budgeted kill/resume campaign differs from clean run")
        for a, b in zip(clean_rows, shared_rows):
            marker = "  " if a == b else "!="
            print(f"{marker} clean={a}\n{marker} workers={b}")
        return 1
    print(f"OK: budgeted islands+two-step kill/resume report bit-identical "
          f"to clean run ({len(clean_rows)} rows, exactly {BUDGET} samples)")

    # 5. transport-aware gc: sweep stale checkpoint/lease files and any
    # transport-specific litter of completed runs; must report bytes.
    gc = subprocess.run(
        suite_command(shared_root, "--gc"),
        env=env, capture_output=True, text=True,
    )
    if gc.returncode != 0 or "reclaimed" not in gc.stdout:
        print(f"FAIL: suite --gc failed on {transport}:\n"
              f"{gc.stdout}\n{gc.stderr}")
        return 1
    print(gc.stdout.strip())
    return 0


def observability_postmortem(
    workdir: Path, shared: RegistryProbe, victim_run: str, env: dict
) -> int:
    """Telemetry survives a SIGKILL; dash/metrics render post-mortem."""
    records = shared.telemetry_records(victim_run)
    if not records:
        print("FAIL: telemetry stream has no complete records")
        return 1
    kinds = [r.get("kind") for r in records]
    if "lease.claim" not in kinds:
        print(f"FAIL: no lease.claim event in telemetry: {kinds}")
        return 1
    print(f"telemetry survived the SIGKILL: {len(records)} complete "
          f"record(s), kinds {sorted(set(kinds))}")

    # The worker registry has no coordinator manifest, so dash and
    # export-metrics take the matrix by explicit flags — the same way
    # the workers themselves were launched.
    dash = subprocess.run(
        [sys.executable, "-m", "repro.cli.main", "dash", "--once",
         *BUDGET_MATRIX_ARGS, "--budget", str(BUDGET),
         *transport_flags(shared.root)],
        env=env, capture_output=True, text=True,
    )
    if dash.returncode != 0:
        print(f"FAIL: dash --once exited {dash.returncode}:\n{dash.stderr}")
        return 1
    if "campaign:" not in dash.stdout or "vgg16/" not in dash.stdout:
        print(f"FAIL: dash --once frame looks wrong:\n{dash.stdout}")
        return 1
    print("dash --once rendered the post-mortem registry")

    prefix = workdir / "postmortem"
    export = subprocess.run(
        [sys.executable, "-m", "repro.cli.main", "export-metrics",
         *BUDGET_MATRIX_ARGS, "--budget", str(BUDGET),
         *transport_flags(shared.root), "--out", str(prefix)],
        env=env, capture_output=True, text=True,
    )
    if export.returncode != 0:
        print(f"FAIL: export-metrics exited {export.returncode}:\n"
              f"{export.stderr}")
        return 1
    prom = prefix.with_suffix(".prom")
    snapshot = prefix.with_suffix(".json")
    if not prom.exists() or not snapshot.exists():
        print("FAIL: export-metrics wrote no snapshot files")
        return 1
    if "repro_campaign_cells" not in prom.read_text():
        print("FAIL: Prometheus snapshot is missing campaign metrics")
        return 1
    if json.loads(snapshot.read_text()).get("telemetry", {}).get(
        "events", 0
    ) < len(records):
        print("FAIL: metrics snapshot undercounts telemetry events")
        return 1
    print("export-metrics rendered the post-mortem registry "
          f"({prom.name}, {snapshot.name})")
    return 0


if __name__ == "__main__":
    try:
        _code = main()
    finally:
        dump_servers(_ANCHOR.parent)
        for _name, _server in _SERVERS:
            _server.shutdown()
    sys.exit(_code)
