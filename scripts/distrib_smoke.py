#!/usr/bin/env python
"""Distrib smoke: two workers, one SIGKILLed mid-cell, identical report.

The CI acceptance check for the distributed campaign layer:

1. run a small matrix to completion single-process in a *clean*
   registry (`repro suite`);
2. start a `repro worker` against a second registry with fault
   injection targeting the first cell: the worker claims the cell's
   lease, then hard-exits mid-cell exactly like an OOM kill — leaving
   an unreleased lease and no durable result;
3. start two concurrent survivor `repro worker` processes on the same
   registry: between them they must steal the dead worker's expired
   lease (exactly once), re-run/resume its cell, and finish the whole
   campaign;
4. merge the registry (`repro suite --report-only`) and assert the
   merged rows are bit-identical to the clean single-process run's.

Exit code 0 on success; non-zero with a diagnostic otherwise. The
killed-and-reclaimed registry is left in place so CI can upload it as
an artifact.

Usage::

    PYTHONPATH=src python scripts/distrib_smoke.py --workdir distrib-smoke
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

MATRIX_ARGS = [
    "--networks", "vgg16,googlenet",
    "--schemes", "cocco,sa",
    "--scale", "tiny",
    "--seed", "0",
]

#: The first cell in matrix order — the one the victim worker claims.
FAULT_CELL = "vgg16/separate/energy/b1/cocco"


def suite_command(registry: Path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli.main", "suite",
        *MATRIX_ARGS, "--registry", str(registry), *extra,
    ]


def worker_command(registry: Path, worker_id: str) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli.main", "worker",
        *MATRIX_ARGS, "--registry", str(registry),
        "--worker-id", worker_id, "--ttl", "3", "--poll", "0.1",
    ]


def read_rows(path: Path) -> list:
    if not path.exists():
        raise SystemExit(f"FAIL: no merged report at {path}")
    return json.loads(path.read_text())["rows"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="distrib-smoke",
                        help="directory holding both registries")
    args = parser.parse_args()

    workdir = Path(args.workdir)
    if workdir.exists():
        shutil.rmtree(workdir)
    clean = workdir / "clean-registry"
    shared = workdir / "shared-registry"
    env = dict(os.environ)

    # 1. clean single-process reference run
    subprocess.run(
        suite_command(clean, "--workers", "1"), env=env, check=True,
        stdout=subprocess.DEVNULL,
    )
    clean_rows = read_rows(clean / "report.json")
    print(f"clean single-process run: {len(clean_rows)} rows")

    # 2. victim worker: dies mid-cell on the first cell it claims,
    # leaving an unreleased lease behind
    victim_env = dict(env, REPRO_SUITE_FAULT_CELL=FAULT_CELL)
    victim = subprocess.run(
        worker_command(shared, "victim"), env=victim_env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    if victim.returncode != 23:
        print(f"FAIL: victim exited {victim.returncode}, expected the "
              "injected hard-kill code 23")
        return 1
    leases = list(shared.glob("*/lease.json"))
    if len(leases) != 1:
        print(f"FAIL: expected exactly one orphaned lease, found {leases}")
        return 1
    print("victim killed mid-cell; orphaned lease in place")

    # 3. two concurrent survivors: a real shared-registry fleet. One of
    # them must reclaim the victim's expired lease; both must exit clean.
    survivors = [
        subprocess.Popen(
            worker_command(shared, f"survivor-{i}"), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        for i in range(2)
    ]
    reclaimed = 0
    for process in survivors:
        stdout, _ = process.communicate(timeout=600)
        if process.returncode != 0:
            print(f"FAIL: a survivor exited {process.returncode}:\n{stdout}")
            return 1
        summary = stdout.strip().splitlines()[-1]
        print(summary)
        match = re.search(r"reclaimed (\d+) expired lease", summary)
        reclaimed += int(match.group(1)) if match else 0
    if reclaimed != 1:
        print(f"FAIL: expected exactly one lease reclaim across the "
              f"fleet, saw {reclaimed}")
        return 1

    # 4. merged report must be bit-identical to the clean run
    subprocess.run(
        suite_command(shared, "--report-only", "--export",
                      str(shared / "report.json")),
        env=env, check=True, stdout=subprocess.DEVNULL,
    )
    shared_rows = read_rows(shared / "report.json")
    if shared_rows != clean_rows:
        print("FAIL: two-worker kill/reclaim campaign differs from clean run")
        for a, b in zip(clean_rows, shared_rows):
            marker = "  " if a == b else "!="
            print(f"{marker} clean={a}\n{marker} workers={b}")
        return 1
    print(f"OK: kill/reclaim report bit-identical to clean run "
          f"({len(clean_rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
