#!/usr/bin/env python
"""Distrib smoke: workers SIGKILLed mid-cell, identical merged reports.

The CI acceptance check for the distributed campaign layer, in two
phases.

Phase 1 (unbudgeted, cocco+sa matrix):

1. run a small matrix to completion single-process in a *clean*
   registry (`repro suite`);
2. start a `repro worker` against a second registry with fault
   injection targeting the first cell: the worker claims the cell's
   lease, then hard-exits mid-cell exactly like an OOM kill — leaving
   an unreleased lease and no durable result;
3. start two concurrent survivor `repro worker` processes on the same
   registry: between them they must steal the dead worker's expired
   lease (exactly once), re-run/resume its cell, and finish the whole
   campaign;
4. merge the registry (`repro suite --report-only`) and assert the
   merged rows are bit-identical to the clean single-process run's.

Phase 2 (budgeted, islands+two-step matrix): the matrix holds an
island-model cell and a two-step (rs) cell under a sample budget sized
so the budget binds. A lone worker is SIGKILLed *mid-islands-cell*
(after its composite checkpoint is durably streaming, before the cell
can finish), two survivors reclaim its lease, resume the checkpoint
mid-search, and run the campaign to its budget. Asserts the registry
charged exactly the budget, and that the merged report is bit-identical
to a clean budgeted single-process run — locking the new islands and
two-step resume paths end-to-end.

Exit code 0 on success; non-zero with a diagnostic otherwise. The
killed-and-reclaimed registries are left in place so CI can upload them
as artifacts.

Usage::

    PYTHONPATH=src python scripts/distrib_smoke.py --workdir distrib-smoke
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

MATRIX_ARGS = [
    "--networks", "vgg16,googlenet",
    "--schemes", "cocco,sa",
    "--scale", "tiny",
    "--seed", "0",
]

#: The first cell in matrix order — the one the victim worker claims.
FAULT_CELL = "vgg16/separate/energy/b1/cocco"

#: Phase 2: an island-model cell plus a two-step (rs) cell.
BUDGET_MATRIX_ARGS = [
    "--networks", "vgg16",
    "--schemes", "islands,rs",
    "--scale", "tiny",
    "--seed", "0",
]

#: Phase 2 sample budget. At tiny scale the islands cell needs ~96
#: evaluations and the rs cell 64 (160 total), so 130 forces the
#: initial 65/65 split to bind: rs finishes under its cap and refunds,
#: islands exhausts at the grown cap — exercising stop-at-cap, resume,
#: and refund re-granting across worker processes.
BUDGET = 130


def suite_command(registry: Path, *extra: str, matrix=None) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli.main", "suite",
        *(matrix or MATRIX_ARGS), "--registry", str(registry), *extra,
    ]


def worker_command(
    registry: Path, worker_id: str, *extra: str, matrix=None
) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli.main", "worker",
        *(matrix or MATRIX_ARGS), "--registry", str(registry),
        "--worker-id", worker_id, "--ttl", "3", "--poll", "0.1", *extra,
    ]


def read_rows(path: Path) -> list:
    if not path.exists():
        raise SystemExit(f"FAIL: no merged report at {path}")
    return json.loads(path.read_text())["rows"]


def charged_evaluations(registry: Path) -> int:
    """Total durably-charged samples: results first, else checkpoints."""
    total = 0
    for run_dir in registry.iterdir():
        if not (run_dir / "config.json").is_file():
            continue
        result = run_dir / "result.json"
        checkpoint = run_dir / "checkpoint.json"
        if result.exists():
            total += json.loads(result.read_text()).get("num_evaluations", 0)
        elif checkpoint.exists():
            total += json.loads(checkpoint.read_text()).get("evaluations", 0)
    return total


def find_run_dir(registry: Path, scheme: str) -> Path | None:
    for run_dir in registry.glob("*"):
        config = run_dir / "config.json"
        if not config.is_file():
            continue
        if json.loads(config.read_text())["config"].get("scheme") == scheme:
            return run_dir
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="distrib-smoke",
                        help="directory holding both registries")
    args = parser.parse_args()

    workdir = Path(args.workdir)
    if workdir.exists():
        shutil.rmtree(workdir)
    clean = workdir / "clean-registry"
    shared = workdir / "shared-registry"
    env = dict(os.environ)

    # 1. clean single-process reference run
    subprocess.run(
        suite_command(clean, "--workers", "1"), env=env, check=True,
        stdout=subprocess.DEVNULL,
    )
    clean_rows = read_rows(clean / "report.json")
    print(f"clean single-process run: {len(clean_rows)} rows")

    # 2. victim worker: dies mid-cell on the first cell it claims,
    # leaving an unreleased lease behind
    victim_env = dict(env, REPRO_SUITE_FAULT_CELL=FAULT_CELL)
    victim = subprocess.run(
        worker_command(shared, "victim"), env=victim_env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    if victim.returncode != 23:
        print(f"FAIL: victim exited {victim.returncode}, expected the "
              "injected hard-kill code 23")
        return 1
    leases = list(shared.glob("*/lease.json"))
    if len(leases) != 1:
        print(f"FAIL: expected exactly one orphaned lease, found {leases}")
        return 1
    print("victim killed mid-cell; orphaned lease in place")

    # 3. two concurrent survivors: a real shared-registry fleet. One of
    # them must reclaim the victim's expired lease; both must exit clean.
    survivors = [
        subprocess.Popen(
            worker_command(shared, f"survivor-{i}"), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        for i in range(2)
    ]
    reclaimed = 0
    for process in survivors:
        stdout, _ = process.communicate(timeout=600)
        if process.returncode != 0:
            print(f"FAIL: a survivor exited {process.returncode}:\n{stdout}")
            return 1
        summary = stdout.strip().splitlines()[-1]
        print(summary)
        match = re.search(r"reclaimed (\d+) expired lease", summary)
        reclaimed += int(match.group(1)) if match else 0
    if reclaimed != 1:
        print(f"FAIL: expected exactly one lease reclaim across the "
              f"fleet, saw {reclaimed}")
        return 1

    # 4. merged report must be bit-identical to the clean run
    subprocess.run(
        suite_command(shared, "--report-only", "--export",
                      str(shared / "report.json")),
        env=env, check=True, stdout=subprocess.DEVNULL,
    )
    shared_rows = read_rows(shared / "report.json")
    if shared_rows != clean_rows:
        print("FAIL: two-worker kill/reclaim campaign differs from clean run")
        for a, b in zip(clean_rows, shared_rows):
            marker = "  " if a == b else "!="
            print(f"{marker} clean={a}\n{marker} workers={b}")
        return 1
    print(f"OK: kill/reclaim report bit-identical to clean run "
          f"({len(clean_rows)} rows)")

    return budgeted_phase(workdir, env)


def budgeted_phase(workdir: Path, env: dict) -> int:
    """Phase 2: budgeted islands+two-step campaign, SIGKILL mid-cell."""
    clean = workdir / "budget-clean-registry"
    shared = workdir / "budget-shared-registry"
    budget = ["--budget", str(BUDGET)]

    # 1. clean budgeted single-process reference. Exhausted (out of
    # budget, checkpoint retained) cells exit non-zero by design.
    reference = subprocess.run(
        suite_command(clean, "--workers", "1", *budget,
                      matrix=BUDGET_MATRIX_ARGS),
        env=env, stdout=subprocess.DEVNULL,
    )
    if reference.returncode not in (0, 1):
        print(f"FAIL: clean budgeted suite exited {reference.returncode}")
        return 1
    clean_rows = read_rows(clean / "report.json")
    clean_charge = charged_evaluations(clean)
    print(f"clean budgeted run: {len(clean_rows)} rows, "
          f"{clean_charge} samples charged")
    if clean_charge != BUDGET:
        print(f"FAIL: clean run charged {clean_charge}, budget is {BUDGET}")
        return 1

    # 2. victim worker, SIGKILLed mid-islands-cell: wait until the
    # cell's composite checkpoint is durably streaming (search is in
    # progress), then kill -9. The lease stays orphaned.
    victim = subprocess.Popen(
        worker_command(shared, "victim", *budget, matrix=BUDGET_MATRIX_ARGS),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 120
    islands_dir = None
    while time.time() < deadline:
        islands_dir = find_run_dir(shared, "islands")
        if islands_dir is not None and (islands_dir / "checkpoint.json").exists():
            break
        time.sleep(0.01)
    else:
        victim.kill()
        print("FAIL: islands cell never started streaming checkpoints")
        return 1
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait(timeout=60)
    if (islands_dir / "result.json").exists():
        print("FAIL: kill landed after the islands cell completed — "
              "the mid-cell window was missed")
        return 1
    checkpointed = json.loads(
        (islands_dir / "checkpoint.json").read_text()
    )["evaluations"]
    print(f"victim SIGKILLed mid-islands-cell at {checkpointed} evaluations; "
          f"orphaned lease: {(islands_dir / 'lease.json').exists()}")

    # 2b. observability post-mortem: the dead worker's telemetry stream
    # must have survived the SIGKILL (modulo a torn final line), and the
    # dashboard + metrics exporter must render from the corpse registry.
    code = observability_postmortem(shared, islands_dir, env)
    if code != 0:
        return code

    # 3. two concurrent budgeted survivors: reclaim, resume the
    # composite checkpoint mid-search, finish the campaign at budget.
    survivors = [
        subprocess.Popen(
            worker_command(shared, f"budget-survivor-{i}", *budget,
                           "--max-idle", "60", matrix=BUDGET_MATRIX_ARGS),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        for i in range(2)
    ]
    resumed = 0
    for process in survivors:
        stdout, _ = process.communicate(timeout=600)
        if process.returncode != 0:
            print(f"FAIL: a budget survivor exited {process.returncode}:\n"
                  f"{stdout}")
            return 1
        summary = stdout.strip().splitlines()[-1]
        print(summary)
        match = re.search(r"resumed (\d+) inherited checkpoint", summary)
        resumed += int(match.group(1)) if match else 0
    if resumed < 1:
        print("FAIL: no survivor resumed the victim's islands checkpoint")
        return 1

    # 4. exact charge + bit-identical merged report
    shared_charge = charged_evaluations(shared)
    if shared_charge != BUDGET:
        print(f"FAIL: fleet charged {shared_charge}, budget is {BUDGET}")
        return 1
    subprocess.run(
        suite_command(shared, "--report-only", "--export",
                      str(shared / "report.json"), matrix=BUDGET_MATRIX_ARGS),
        env=env, check=True, stdout=subprocess.DEVNULL,
    )
    shared_rows = read_rows(shared / "report.json")
    if shared_rows != clean_rows:
        print("FAIL: budgeted kill/resume campaign differs from clean run")
        for a, b in zip(clean_rows, shared_rows):
            marker = "  " if a == b else "!="
            print(f"{marker} clean={a}\n{marker} workers={b}")
        return 1
    print(f"OK: budgeted islands+two-step kill/resume report bit-identical "
          f"to clean run ({len(clean_rows)} rows, exactly {BUDGET} samples)")
    return 0


def observability_postmortem(
    shared: Path, victim_dir: Path, env: dict
) -> int:
    """Telemetry survives a SIGKILL; dash/metrics render post-mortem."""
    telemetry = victim_dir / "telemetry.jsonl"
    if not telemetry.exists():
        print("FAIL: SIGKILLed worker left no telemetry stream")
        return 1
    text = telemetry.read_text()
    lines = text.splitlines()
    if lines and not text.endswith("\n"):
        lines = lines[:-1]  # a torn final line is the designed loss
    records = []
    for line in lines:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            print(f"FAIL: corrupt complete telemetry line: {line!r}")
            return 1
        if not isinstance(record, dict):
            print(f"FAIL: non-object telemetry record: {line!r}")
            return 1
        records.append(record)
    if not records:
        print("FAIL: telemetry stream has no complete records")
        return 1
    kinds = [r.get("kind") for r in records]
    if "lease.claim" not in kinds:
        print(f"FAIL: no lease.claim event in telemetry: {kinds}")
        return 1
    print(f"telemetry survived the SIGKILL: {len(records)} complete "
          f"record(s), kinds {sorted(set(kinds))}")

    # The worker registry has no coordinator manifest, so dash and
    # export-metrics take the matrix by explicit flags — the same way
    # the workers themselves were launched.
    dash = subprocess.run(
        [sys.executable, "-m", "repro.cli.main", "dash", "--once",
         *BUDGET_MATRIX_ARGS, "--budget", str(BUDGET),
         "--registry", str(shared)],
        env=env, capture_output=True, text=True,
    )
    if dash.returncode != 0:
        print(f"FAIL: dash --once exited {dash.returncode}:\n{dash.stderr}")
        return 1
    if "campaign:" not in dash.stdout or "vgg16/" not in dash.stdout:
        print(f"FAIL: dash --once frame looks wrong:\n{dash.stdout}")
        return 1
    print("dash --once rendered the post-mortem registry")

    export = subprocess.run(
        [sys.executable, "-m", "repro.cli.main", "export-metrics",
         *BUDGET_MATRIX_ARGS, "--budget", str(BUDGET),
         "--registry", str(shared),
         "--out", str(shared / "postmortem")],
        env=env, capture_output=True, text=True,
    )
    if export.returncode != 0:
        print(f"FAIL: export-metrics exited {export.returncode}:\n"
              f"{export.stderr}")
        return 1
    prom = shared / "postmortem.prom"
    snapshot = shared / "postmortem.json"
    if not prom.exists() or not snapshot.exists():
        print("FAIL: export-metrics wrote no snapshot files")
        return 1
    if "repro_campaign_cells" not in prom.read_text():
        print("FAIL: Prometheus snapshot is missing campaign metrics")
        return 1
    if json.loads(snapshot.read_text()).get("telemetry", {}).get(
        "events", 0
    ) < len(records):
        print("FAIL: metrics snapshot undercounts telemetry events")
        return 1
    print("export-metrics rendered the post-mortem registry "
          f"({prom.name}, {snapshot.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
