#!/usr/bin/env python
"""Suite smoke: kill a campaign mid-flight, resume it, compare reports.

The CI acceptance check for the ``repro suite`` orchestration layer:

1. run a small matrix to completion in a *clean* registry;
2. start the same matrix in a second registry, SIGKILL the whole process
   as soon as the first cell's durable result lands (or after a grace
   period, whichever comes first);
3. re-run the same command — the campaign must resume, re-running only
   incomplete cells;
4. assert the resumed registry's merged report is bit-identical to the
   clean run's.

Exit code 0 on success; non-zero with a diagnostic otherwise. The
killed-and-resumed registry directory is left in place so CI can upload
it as an artifact.

Usage::

    PYTHONPATH=src python scripts/suite_smoke.py --workdir suite-smoke \
        --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

MATRIX_ARGS = [
    "--networks", "vgg16,googlenet",
    "--schemes", "cocco,sa",
    "--scale", "tiny",
    "--seed", "0",
]


def suite_command(registry: Path, workers: int) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli.main", "suite",
        *MATRIX_ARGS,
        "--registry", str(registry),
        "--workers", str(workers),
    ]


def read_rows(registry: Path) -> list:
    report = registry / "report.json"
    if not report.exists():
        raise SystemExit(f"FAIL: no merged report at {report}")
    return json.loads(report.read_text())["rows"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="suite-smoke",
                        help="directory holding both registries")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--kill-grace", type=float, default=60.0,
                        help="max seconds to wait for the first durable "
                             "result before killing anyway")
    args = parser.parse_args()

    workdir = Path(args.workdir)
    if workdir.exists():
        shutil.rmtree(workdir)
    clean = workdir / "clean-registry"
    killed = workdir / "killed-registry"
    env = dict(os.environ)

    # 1. clean, uninterrupted campaign
    started = time.time()
    subprocess.run(
        suite_command(clean, args.workers), env=env, check=True,
        stdout=subprocess.DEVNULL,
    )
    print(f"clean campaign finished in {time.time() - started:.1f}s")

    # 2. start the same campaign elsewhere and SIGKILL it mid-flight.
    # The victim gets its own session so the kill takes down the pool
    # workers too — otherwise the orphaned workers would finish their
    # cells and the "kill" would leave nothing incomplete.
    victim = subprocess.Popen(
        suite_command(killed, args.workers), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    deadline = time.time() + args.kill_grace
    while time.time() < deadline and victim.poll() is None:
        if list(killed.glob("*/result.json")):
            break
        time.sleep(0.02)
    if victim.poll() is None:
        os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
        victim.wait()
        print(
            f"killed campaign with "
            f"{len(list(killed.glob('*/result.json')))} of 4 cells durable"
        )
    else:
        # machine too fast: the campaign completed before the kill —
        # the resume below then exercises the all-complete path
        print("campaign finished before the kill landed (fast machine)")

    complete_after_kill = {p.parent.name for p in killed.glob("*/result.json")}

    # 3. resume
    result = subprocess.run(
        suite_command(killed, args.workers), env=env, check=True,
        capture_output=True, text=True,
    )
    print(result.stdout.splitlines()[-2])

    # completed cells were not re-run: their result files are untouched
    for line in result.stdout.splitlines():
        if "already complete" in line:
            already = int(line.split("cells:")[1].split("already")[0])
            if already < len(complete_after_kill):
                print(
                    f"FAIL: {len(complete_after_kill)} cells were durable "
                    f"but only {already} were skipped on resume"
                )
                return 1

    # 4. merged reports must be bit-identical
    clean_rows = read_rows(clean)
    killed_rows = read_rows(killed)
    if clean_rows != killed_rows:
        print("FAIL: resumed campaign's merged report differs from clean run")
        for a, b in zip(clean_rows, killed_rows):
            marker = "  " if a == b else "!="
            print(f"{marker} clean={a}\n{marker} resumed={b}")
        return 1
    print(f"OK: resumed report bit-identical to clean run "
          f"({len(clean_rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
